// Windowed conservative-PDES engine behind ClusterSimulator::run_prepared
// at nodes >= 2.
//
// Every node owns a full serving shard — typed event heap, monotone warm
// ring, tombstoned waiting queue, constant-delay timeout ring — and
// advances it inside left-closed time windows [B, B'). The window width
// is the minimum cross-node latency: a re-routed retry generated at
// t_fail inside the window cannot re-dispatch before t_fail + the retry
// backoff floor, so with width <= floor every cross-node event lands at
// or after the next barrier. At each barrier a single coordinator owns
// all state: it drains per-node outboxes, routes pending dispatches
// (arrivals + transferred retries + crash requeues) in one global
// (time, kind, id) order against a RouterSnapshot, processes node
// crashes (whose times are known statically, so windows are cut at
// them), and k-way merges the per-node delta logs into the global
// accounting (peak_instances, peak_queue, latency fold) in (time, node)
// order.
//
// Determinism: nothing in the schedule depends on the worker count —
// node->worker assignment is fixed, every cross-shard interaction
// happens in coordinator-defined order, per-node Rng streams are split
// at setup, and the merged accounting order is (time, node). The
// sim_threads == 1 execution IS the engine's sequential semantics;
// 2/4/8 threads replay it bit-for-bit (ShardedParallelParityTest).
//
// Stateless policies (round_robin, random) never read node state, so a
// fault-free run needs no intermediate barrier at all: one window spans
// the whole horizon and the shards run embarrassingly parallel.
// Stateful policies (least_outstanding, power_of_two, warm_affinity)
// route against per-node in-flight/warm snapshots republished at every
// barrier, so their windows are additionally capped at a fixed fidelity
// width.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <optional>
#include <vector>

#include "common/log.h"
#include "common/thread_pool.h"
#include "metrics/stats.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "platform/cluster.h"
#include "platform/cluster_internal.h"
#include "platform/router.h"
#include "sim/event_queue.h"
#include "sim/shard.h"

namespace chiron {
namespace cluster_detail {
namespace {

constexpr TimeMs kInf = std::numeric_limits<TimeMs>::infinity();
/// Sentinel node index: the request's timeout is in flight between nodes
/// (its origin-side ring entry is a tombstone; the destination re-arms a
/// heap timeout at delivery).
constexpr std::uint32_t kTimeoutInFlight = 0xFFFFFFFFu;
/// Fidelity cap for stateful-router windows: snapshots are republished
/// at least this often in simulated time.
constexpr TimeMs kStatefulWindowMs = 10.0;
/// Lower bound on the window width so a jitter >= 1 config (backoff
/// floor 0) cannot degenerate into infinitely many windows. Transfers
/// landing inside the current window are delivered at the next barrier
/// (clamped), which stays deterministic.
constexpr TimeMs kMinWindowMs = 0.25;

struct TimeoutEntry {
  TimeMs at;
  std::uint64_t seq;
  std::uint32_t id;
};

/// Cross-node dispatch handed to the coordinator: a re-routed retry (from
/// a worker outbox or a crash victim) waiting for the barrier of the
/// window containing `at`.
struct Transfer {
  TimeMs at;
  std::uint32_t id;
};

/// One routed dispatch delivered into a shard's window inbox.
struct InboxEntry {
  TimeMs at;
  std::uint32_t id;
  /// kNew: first dispatch (record admission, arm the ring timeout).
  /// kRedispatch: transferred retry or crash requeue (re-arm the heap
  /// timeout carried in ReqState::deadline).
  enum class Kind : std::uint8_t { kNew, kRedispatch } kind;
};

/// Per-node accounting delta, merged across shards at barriers in
/// (time, node) order so the global trajectory (live instances, queue
/// depth, latency fold) replays one canonical sequential order.
struct LogEntry {
  TimeMs at;
  double value;  ///< latency for kLatency; unused otherwise
  enum class Kind : std::uint8_t {
    kLiveUp,    ///< cold start brought an instance up (peak sample point)
    kLiveDown,  ///< reap or sandbox crash took an instance down
    kQueueUp,   ///< request queued (peak sample point)
    kQueueDown, ///< request dequeued or timed out while queued
    kLatency,   ///< completion: value = e2e latency
  } kind;
};

/// Counters a worker accumulates privately; summed (integers — order
/// free) into ClusterResult and the metric sinks at teardown.
struct Tally {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t retried = 0;
  std::size_t timed_out = 0;
  std::size_t dropped = 0;
  std::size_t cold_starts = 0;
  std::size_t fault_kind[4] = {0, 0, 0, 0};  // cold, crash, straggler, node

  void fold(const Tally& t) {
    completed += t.completed;
    failed += t.failed;
    retried += t.retried;
    timed_out += t.timed_out;
    dropped += t.dropped;
    cold_starts += t.cold_starts;
    for (int i = 0; i < 4; ++i) fault_kind[i] += t.fault_kind[i];
  }
  std::size_t fault_total() const {
    return fault_kind[0] + fault_kind[1] + fault_kind[2] + fault_kind[3];
  }
};

struct ReqState {
  TimeMs arrival = 0.0;
  TimeMs deadline = 0.0;  ///< absolute timeout deadline; 0 = none
  std::uint32_t attempt = 1;
  std::uint32_t node = 0;          ///< where the current attempt lives
  std::uint32_t timeout_node = 0;  ///< shard owning the armed timeout
  enum class Phase : std::uint8_t {
    kWaiting,
    kQueued,
    kRunning,
    kBackoff,
    kDone,
  } phase = Phase::kWaiting;
  ClusterEventQueue::Handle pending_ev{};
  ClusterEventQueue::Handle timeout_ev{};
  bool has_timeout_ev = false;
  bool timeout_via_ring = false;
  /// True while the arrival shard's timeout ring holds a live entry for
  /// this request. Written ONLY by that shard's worker (arm, ring fire,
  /// local disarm, transfer-out) or by the coordinator at barriers —
  /// never by the shard a transferred request moved to — so
  /// prune_timeout_ring can test staleness without racing the new
  /// owner's timeout bookkeeping (has_timeout_ev & co above).
  bool ring_live = false;
};

/// One node's complete serving shard. Workers own disjoint shard sets
/// during a window; the coordinator owns everything at barriers (the
/// WindowBarrier mutex provides the happens-before edges).
struct Shard {
  std::uint32_t k = 0;
  Ring<TimeMs> warm;
  Ring<std::uint32_t> queue;
  std::size_t live = 0;
  std::size_t busy = 0;
  std::size_t queued_live = 0;
  std::size_t peak_queue = 0;  ///< peak of queued_live (NodeResult)
  ClusterEventQueue events;
  Ring<TimeoutEntry> timeout_ring;
  std::vector<InboxEntry> inbox;
  std::size_t inbox_cursor = 0;
  sim::Mailbox<Transfer> outbox;
  std::vector<LogEntry> log;
  double busy_area = 0.0;
  TimeMs last_event = 0.0;
  TimeMs next_at = kInf;  ///< earliest local event after the last window
  Rng rng{0};             ///< per-node service-time stream
  Tally tally;
  std::size_t routed = 0;
  std::size_t node_crashes = 0;
};

int fault_kind_index(FaultKind kind) {
  switch (kind) {
    case FaultKind::kColdStart: return 0;
    case FaultKind::kCrash: return 1;
    case FaultKind::kStraggler: return 2;
    case FaultKind::kNodeCrash: return 3;
    default: return -1;
  }
}

}  // namespace

ClusterResult run_prepared_windowed(const ClusterConfig& config,
                                    const RuntimeParams& params,
                                    const Backend& backend,
                                    std::size_t cascading_stages,
                                    const std::vector<TimeMs>& arrival_times,
                                    std::uint64_t id_base) {
  const std::uint32_t node_count =
      static_cast<std::uint32_t>(std::max<std::size_t>(2, config.nodes));
  const std::size_t per_node_capacity =
      node_capacity(backend.resources(), params);
  const std::size_t n = arrival_times.size();

  // Seeded stream plan, same prefix as the single-node loop: first split
  // fed the arrival generator, the second roots the service streams, the
  // third seeds the router. Per-node service streams are further splits
  // of the service root, taken in node order at setup — fixed for every
  // thread count.
  Rng rng(config.seed);
  (void)rng.split();
  Rng service_root = rng.split();
  Router router(config.router, node_count, rng.split());

  const FaultInjector injector(config.faults);
  const RetryPolicy& retry = config.retry;
  const bool has_timeout = retry.timeout_ms > 0.0;
  const TimeMs cold_penalty = cold_start_penalty(params, cascading_stages);

  // Mode derivation — a pure function of the config, never of the thread
  // count (the parity anchor). Retries can cross nodes only when an
  // attempt can actually fail with attempts to spare; node crashes
  // always transfer (queue drains re-route) but their times are known
  // statically, so they cut windows rather than bound the width.
  const bool attempts_can_fail = config.faults.cold_start_failure > 0.0 ||
                                 config.faults.crash > 0.0 ||
                                 config.faults.node_crash > 0.0;
  const bool retry_transfers = retry.max_attempts > 1 && attempts_can_fail;
  const bool stateful_router =
      config.router == RouterPolicy::kLeastOutstanding ||
      config.router == RouterPolicy::kPowerOfTwo ||
      config.router == RouterPolicy::kWarmAffinity;
  TimeMs width = kInf;
  if (config.sim_window_ms > 0.0) {
    width = config.sim_window_ms;
  } else {
    if (retry_transfers) {
      // Backoff floor: the smallest backoff any retry can draw is
      // min(base, max) * (1 - jitter) (attempt 1, worst-case jitter).
      const double swing = std::min(retry.jitter, 1.0);
      const TimeMs floor_ms =
          std::min(retry.base_backoff_ms, retry.max_backoff_ms) *
          (1.0 - swing);
      width = std::min(width, std::max(kMinWindowMs, floor_ms));
    }
    if (stateful_router) width = std::min(width, kStatefulWindowMs);
  }
  const bool single_window = !std::isfinite(width) &&
                             !(config.faults.node_crash > 0.0);

  ClusterResult result;
  result.offered = n;
  result.request_id_base = id_base;
  result.node_results.resize(node_count);

  // Observability sinks (simulated timestamps throughout). Tracer and
  // recorder are thread-safe and written live by workers; metric
  // counters are flushed once at teardown from the per-shard tallies so
  // their final values are deterministic and match ClusterResult.
  obs::Tracer* tracer =
      config.tracer && config.tracer->enabled() ? config.tracer : nullptr;
  obs::MetricsRegistry* metrics = config.metrics;
  const int request_track =
      tracer ? tracer->new_track("cluster.requests", obs::kVirtualPid) : 0;
  obs::FlightRecorder* recorder =
      config.recorder && config.recorder->enabled() ? config.recorder
                                                    : nullptr;
  const std::string fault_label[4] = {"fault.cold_start", "fault.crash",
                                      "fault.straggler", "fault.node_crash"};
  std::vector<obs::Gauge*> node_queue_gauge(node_count, nullptr);
  if (metrics) {
    for (std::uint32_t k = 0; k < node_count; ++k) {
      node_queue_gauge[k] = &metrics->gauge("cluster.node." +
                                            std::to_string(k) +
                                            ".queue_depth");
    }
  }
  auto rid = [id_base](std::uint64_t id) { return id_base + id; };

  std::vector<ReqState> reqs(n);
  for (std::size_t i = 0; i < n; ++i) reqs[i].arrival = arrival_times[i];

  // Arrival order: a cursor over the (time, index)-sorted stream. The
  // generator emits sorted times; an unsorted hand-built vector gets one
  // stable index sort at setup (the heap order the single-node loop
  // would have used).
  const bool sorted_arrivals =
      std::is_sorted(arrival_times.begin(), arrival_times.end());
  std::vector<std::uint32_t> arrival_order;
  if (!sorted_arrivals) {
    arrival_order.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      arrival_order[i] = static_cast<std::uint32_t>(i);
    }
    std::stable_sort(arrival_order.begin(), arrival_order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return arrival_times[a] < arrival_times[b];
                     });
  }
  auto arrival_id = [&](std::size_t i) {
    return sorted_arrivals ? static_cast<std::uint32_t>(i) : arrival_order[i];
  };
  auto arrival_at = [&](std::size_t i) {
    return arrival_times[arrival_id(i)];
  };

  // Statically-known node crash schedule, sorted by (time, node): each
  // crash is a window cut processed by the coordinator at its barrier.
  struct CrashPoint {
    TimeMs at;
    std::uint32_t k;
  };
  std::vector<CrashPoint> crashes;
  if (config.faults.node_crash > 0.0) {
    crashes.reserve(node_count);
    for (std::uint32_t k = 0; k < node_count; ++k) {
      if (!injector.node_crashes(k)) continue;
      crashes.push_back(
          CrashPoint{config.horizon_ms * injector.node_crash_frac(k), k});
    }
    std::sort(crashes.begin(), crashes.end(),
              [](const CrashPoint& a, const CrashPoint& b) {
                return a.at != b.at ? a.at < b.at : a.k < b.k;
              });
  }

  // Shard sizing. Per-node reservations scale with the node's share of
  // the request stream (with 4x headroom for routing skew) so steady
  // state stays allocation-free; a pathologically skewed run grows a
  // ring or vector — correct, just no longer allocation-free.
  const std::size_t share = n / node_count + 1;
  const bool transfers_possible =
      retry_transfers || config.faults.node_crash > 0.0;
  std::vector<Shard> shards(node_count);
  for (std::uint32_t k = 0; k < node_count; ++k) {
    Shard& s = shards[k];
    s.k = k;
    s.rng = service_root.split();
    s.warm.reserve(std::min(per_node_capacity, n) + 1);
    s.queue.reserve(std::min(n, 4 * share + 64) + 1);
    if (has_timeout) s.timeout_ring.reserve(std::min(n, 4 * share + 64) + 1);
    // Live heap events: completions/crashes (<= busy <= capacity) plus
    // transferred-in heap timeouts (<= requests resident on the node).
    const std::size_t ev_slots =
        transfers_possible || has_timeout
            ? std::min(2 * n + 8, 6 * share + 2 * per_node_capacity + 64)
            : per_node_capacity + 16;
    s.events.reserve(ev_slots, 2 * ev_slots + 16);
    if (!single_window) {
      s.inbox.reserve(std::min(n, 4 * share + 64));
      s.log.reserve(std::min(5 * n, 10 * share + 64));
    }
    if (transfers_possible) s.outbox.reserve(std::min(n, 2 * share + 64));
  }

  // Coordinator state.
  std::vector<Transfer> pending;  ///< undelivered cross-node dispatches
  if (transfers_possible) pending.reserve(n);
  std::vector<double> latencies;
  latencies.reserve(n);
  RouterSnapshot snapshot(node_count);
  std::vector<std::uint32_t> batch_picks;
  batch_picks.reserve(n);
  std::vector<std::size_t> merge_cursor(node_count, 0);
  Tally coord;  ///< crash-path and late-timeout counters
  obs::Histogram* latency_hist =
      metrics ? &metrics->histogram("cluster.e2e_latency_ms") : nullptr;

  // Global running aggregates, advanced only at barriers (merged logs)
  // and by coordinator-side crash processing — one canonical order.
  std::size_t live_now = 0;
  std::size_t queued_now = 0;
  TimeMs coord_last = 0.0;
  std::size_t window_count = 0;
  std::size_t transfer_count = 0;
  std::size_t barrier_routed = 0;

  // ---- shared handlers (called by workers inside windows for their own
  // shards, and by the coordinator at barriers for any shard) ----

  auto log_entry = [&](Shard& s, TimeMs at, LogEntry::Kind kind,
                       double value = 0.0) {
    s.log.push_back(LogEntry{at, value, kind});
  };

  auto account = [](Shard& s, TimeMs now) {
    s.busy_area += static_cast<double>(s.busy) * (now - s.last_event);
    s.last_event = now;
  };

  auto reap_node = [&](Shard& s, TimeMs now) {
    while (!s.warm.empty() &&
           now - s.warm.front() >= config.keep_alive_ms) {
      s.warm.pop_front();
      --s.live;
      log_entry(s, now, LogEntry::Kind::kLiveDown);
    }
  };

  auto note_node_queue = [&](Shard& s) {
    if (node_queue_gauge[s.k]) {
      node_queue_gauge[s.k]->set(static_cast<double>(s.queued_live));
    }
  };

  auto count_fault = [&](Shard& s, FaultKind kind, std::uint32_t id,
                         std::uint32_t attempt, TimeMs now,
                         double value = 0.0) {
    const int ki = fault_kind_index(kind);
    if (ki >= 0) ++s.tally.fault_kind[ki];
    if (tracer && ki >= 0) {
      tracer->instant_at(fault_label[ki], "fault", obs::kVirtualPid,
                         request_track, now,
                         {{"request", static_cast<double>(rid(id))},
                          {"attempt", static_cast<double>(attempt)}});
    }
    if (recorder) {
      recorder->record(fault_rec_kind(kind), rid(id), attempt, now, value,
                       static_cast<std::int32_t>(reqs[id].node));
    }
  };

  auto end_request_span = [&](std::uint32_t id, TimeMs now) {
    if (tracer) {
      tracer->async_end_at("request", "sim", obs::kVirtualPid, request_track,
                           now, rid(id));
    }
  };

  // Disarms `id`'s timeout from shard `s` (which must own it, or it is a
  // ring entry turning into a lazy tombstone) and marks the request done.
  auto finalize = [&](Shard& s, std::uint32_t id) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kDone;
    if (r.has_timeout_ev) {
      if (r.timeout_via_ring) {
        r.ring_live = false;  // via_ring implies s owns the ring entry
      } else if (r.timeout_node == s.k) {
        s.events.cancel(r.timeout_ev);
      }
      r.has_timeout_ev = false;
    }
  };

  auto take_queued = [&](Shard& s) -> std::optional<std::uint32_t> {
    while (!s.queue.empty()) {
      const std::uint32_t id = s.queue.pop_front();
      if (reqs[id].phase == ReqState::Phase::kQueued) {
        --s.queued_live;
        note_node_queue(s);
        return id;
      }
    }
    return std::nullopt;
  };

  // Handles one failed attempt at `t` on shard `s`. A surviving retry
  // becomes a cross-node transfer via `sink` (the worker's outbox or the
  // coordinator's pending list) — unless its deadline lands at or before
  // the re-dispatch time, in which case the still-armed timeout fires
  // first and the retry is never delivered (the sequential loop's
  // timeout-cancels-retry order).
  auto fail_attempt = [&](Shard& s, std::uint32_t id, TimeMs t,
                          TimeMs extra_delay, Tally& tally, auto&& sink) {
    ReqState& r = reqs[id];
    ++tally.failed;
    if (r.attempt < retry.max_attempts) {
      ++tally.retried;
      const TimeMs backoff = injector.retry_backoff_ms(retry, r.attempt, id);
      if (tracer) {
        tracer->complete_at("retry.backoff", "fault", obs::kVirtualPid,
                            request_track, t, extra_delay + backoff,
                            {{"attempt", static_cast<double>(r.attempt)},
                             {"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kRetryBackoff, rid(id), r.attempt, t,
                         extra_delay + backoff,
                         static_cast<std::int32_t>(r.node));
      }
      ++r.attempt;
      r.phase = ReqState::Phase::kBackoff;
      const TimeMs t_retry = t + extra_delay + backoff;
      if (r.has_timeout_ev && r.deadline <= t_retry) {
        // The timeout wins: leave it armed where it is; no transfer.
      } else {
        if (r.has_timeout_ev) {
          if (r.timeout_via_ring) {
            r.ring_live = false;  // origin ring entry tombstoned
          } else if (r.timeout_node == s.k) {
            s.events.cancel(r.timeout_ev);
          }
          r.timeout_node = kTimeoutInFlight;
          r.timeout_via_ring = false;
        }
        sink(Transfer{t_retry, id});
      }
    } else {
      ++tally.dropped;
      if (recorder) {
        recorder->record(obs::RecKind::kDrop, rid(id), r.attempt, t, 0.0,
                         static_cast<std::int32_t>(r.node));
      }
      finalize(s, id);
      end_request_span(id, t);
    }
  };

  auto begin_service = [&](Shard& s, std::uint32_t id, TimeMs now,
                           TimeMs startup, Tally& tally, auto&& sink) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kRunning;
    ++s.busy;
    TimeMs service = backend.run(s.rng).e2e_latency_ms;
    if (injector.straggles(id, r.attempt)) {
      service *= config.faults.straggler_multiplier;
      count_fault(s, FaultKind::kStraggler, id, r.attempt, now,
                  config.faults.straggler_multiplier);
    }
    if (recorder) {
      recorder->record(obs::RecKind::kServiceBegin, rid(id), r.attempt, now,
                       service, static_cast<std::int32_t>(s.k));
    }
    if (injector.crashes(id, r.attempt)) {
      const TimeMs crash_at =
          now + startup + service * config.faults.crash_point;
      r.pending_ev = s.events.schedule(
          crash_at, ClusterEvent{ClusterEvent::Kind::kCrash, id});
      return;
    }
    const TimeMs finish = now + startup + service;
    r.pending_ev = s.events.schedule(
        finish, ClusterEvent{ClusterEvent::Kind::kCompletion, id});
    (void)tally;
    (void)sink;
  };

  // Places `id` on shard `s` at `now` — routing already decided at the
  // barrier: warm reuse, cold start if the node has headroom, else the
  // node's queue.
  auto dispatch_to = [&](Shard& s, std::uint32_t id, TimeMs now,
                         Tally& tally, auto&& sink) {
    account(s, now);
    reap_node(s, now);
    ReqState& r = reqs[id];
    r.node = s.k;
    ++s.routed;
    if (!s.warm.empty()) {
      s.warm.pop_back();  // LIFO keeps hot instances hot
      begin_service(s, id, now, 0.0, tally, sink);
    } else if (s.live < per_node_capacity) {
      if (injector.cold_start_fails(id, r.attempt)) {
        // The sandbox dies during boot: the boot time is still paid (it
        // delays the retry) but no instance comes up.
        count_fault(s, FaultKind::kColdStart, id, r.attempt, now,
                    cold_penalty);
        fail_attempt(s, id, now, cold_penalty, tally, sink);
        return;
      }
      ++s.live;
      log_entry(s, now, LogEntry::Kind::kLiveUp);
      ++s.tally.cold_starts;
      if (tracer) {
        tracer->instant_at("cluster.cold_start", "sim", obs::kVirtualPid,
                           request_track, now,
                           {{"request", static_cast<double>(rid(id))},
                            {"node", static_cast<double>(s.k)}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kColdStart, rid(id), r.attempt, now,
                         cold_penalty, static_cast<std::int32_t>(s.k));
      }
      begin_service(s, id, now, cold_penalty, tally, sink);
    } else {
      r.phase = ReqState::Phase::kQueued;
      s.queue.push_back(id);
      ++s.queued_live;
      s.peak_queue = std::max(s.peak_queue, s.queued_live);
      log_entry(s, now, LogEntry::Kind::kQueueUp);
      if (recorder) {
        recorder->record(obs::RecKind::kQueue, rid(id), r.attempt, now,
                         static_cast<double>(s.queued_live),
                         static_cast<std::int32_t>(s.k));
      }
      note_node_queue(s);
    }
  };

  // Frees the instance that just finished/aborted on `s`: hand it to the
  // next queued request directly, or park it in the warm pool.
  auto release_instance = [&](Shard& s, TimeMs at, Tally& tally,
                              auto&& sink) {
    if (const auto qid = take_queued(s)) {
      log_entry(s, at, LogEntry::Kind::kQueueDown);
      // Handed to the queued request directly (it stays on its node): it
      // never visits the warm pool, so reap cannot reclaim it out from
      // under the handoff.
      reap_node(s, at);
      begin_service(s, *qid, at, 0.0, tally, sink);
    } else {
      s.warm.push_back(at);
    }
  };

  auto handle_timeout = [&](Shard& s, std::uint32_t id, TimeMs at,
                            Tally& tally, auto&& sink) {
    ReqState& r = reqs[id];
    if (r.timeout_via_ring) r.ring_live = false;  // fired from s's own ring
    r.has_timeout_ev = false;
    ++tally.timed_out;
    if (tracer) {
      tracer->instant_at("request.timeout", "fault", obs::kVirtualPid,
                         request_track, at,
                         {{"request", static_cast<double>(rid(id))}});
    }
    if (recorder) {
      recorder->record(obs::RecKind::kTimeout, rid(id), r.attempt, at, 0.0,
                       static_cast<std::int32_t>(r.node));
    }
    switch (r.phase) {
      case ReqState::Phase::kQueued: {
        // Lazy tombstone: the queue entry stays behind and take_queued
        // skips it; only the live counters move.
        --s.queued_live;
        log_entry(s, at, LogEntry::Kind::kQueueDown);
        note_node_queue(s);
        break;
      }
      case ReqState::Phase::kRunning: {
        // The platform aborts the handler but keeps the sandbox.
        s.events.cancel(r.pending_ev);
        account(s, at);
        --s.busy;
        release_instance(s, at, tally, sink);
        break;
      }
      case ReqState::Phase::kBackoff:
        // The retry is an undelivered transfer (or was never sunk); the
        // coordinator checks deadlines before delivery, so nothing is
        // armed here to cancel.
        break;
      default:
        break;
    }
    r.phase = ReqState::Phase::kDone;
    end_request_span(id, at);
  };

  auto handle_completion = [&](Shard& s, std::uint32_t id, TimeMs at,
                               Tally& tally, auto&& sink) {
    account(s, at);
    ReqState& r = reqs[id];
    --s.busy;
    const TimeMs latency = at - r.arrival;
    log_entry(s, at, LogEntry::Kind::kLatency, latency);
    ++tally.completed;
    if (recorder) {
      recorder->record(obs::RecKind::kComplete, rid(id), r.attempt, at,
                       latency, static_cast<std::int32_t>(s.k));
    }
    finalize(s, id);
    end_request_span(id, at);
    release_instance(s, at, tally, sink);
  };

  auto handle_crash = [&](Shard& s, std::uint32_t id, TimeMs at,
                          Tally& tally, auto&& sink) {
    account(s, at);
    ReqState& r = reqs[id];
    --s.busy;
    --s.live;  // the crash takes the sandbox with it
    log_entry(s, at, LogEntry::Kind::kLiveDown);
    count_fault(s, FaultKind::kCrash, id, r.attempt, at);
    fail_attempt(s, id, at, 0.0, tally, sink);
    // The crash freed a slot on this node: a queued request can now
    // cold-start here (no re-route; the queue is node-local).
    if (const auto qid = take_queued(s)) {
      log_entry(s, at, LogEntry::Kind::kQueueDown);
      dispatch_to(s, *qid, at, tally, sink);
    }
  };

  auto handle_inbox = [&](Shard& s, const InboxEntry& e, Tally& tally,
                          auto&& sink) {
    ReqState& r = reqs[e.id];
    s.events.advance_to(e.at);
    if (e.kind == InboxEntry::Kind::kNew) {
      if (tracer) {
        tracer->async_begin_at("request", "sim", obs::kVirtualPid,
                               request_track, e.at, rid(e.id));
      }
      if (recorder) {
        recorder->record(obs::RecKind::kAdmit, rid(e.id), 1, e.at);
      }
      if (has_timeout) {
        r.deadline = e.at + retry.timeout_ms;
        r.has_timeout_ev = true;
        r.timeout_via_ring = true;
        r.ring_live = true;
        r.timeout_node = s.k;
        s.timeout_ring.push_back(
            TimeoutEntry{r.deadline, s.events.mint_seq(), e.id});
      }
    } else if (r.has_timeout_ev && r.timeout_node == kTimeoutInFlight) {
      // The timeout travelled with the transfer: re-arm it here FIRST so
      // its seq precedes any event of the re-dispatched attempt —
      // timeout still wins ties at the deadline.
      r.timeout_via_ring = false;
      r.timeout_node = s.k;
      r.timeout_ev = s.events.schedule(
          r.deadline, ClusterEvent{ClusterEvent::Kind::kTimeout, e.id});
    }
    dispatch_to(s, e.id, e.at, tally, sink);
  };

  // True while the timeout ring's front entry is a tombstone (fired,
  // finalized, or transferred away).
  auto prune_timeout_ring = [&](Shard& s) {
    while (!s.timeout_ring.empty()) {
      // ring_live is the ONLY ReqState field read here: the request may
      // have transferred to another node whose worker is concurrently
      // rewriting its timeout bookkeeping, but ring_live is written
      // exclusively by this shard (or the coordinator at a barrier,
      // which orders against this read via the window mutex).
      if (reqs[s.timeout_ring.front().id].ring_live) return;
      s.timeout_ring.pop_front();
    }
  };

  // Runs shard `s` through its window [.., window_end): inbox entries
  // (all < window_end by construction), ring timeouts, and heap events
  // merged with inbox-wins-ties and ring-vs-heap (time, seq) order —
  // the single-node loop's three-way merge, per shard.
  auto process_window = [&](Shard& s, TimeMs window_end) {
    auto sink = [&s](const Transfer& t) { s.outbox.push(t); };
    Tally& tally = s.tally;
    for (;;) {
      prune_timeout_ring(s);
      const bool have_inbox = s.inbox_cursor < s.inbox.size();
      const TimeMs inbox_at =
          have_inbox ? s.inbox[s.inbox_cursor].at : kInf;
      TimeMs ring_at = kInf;
      std::uint64_t ring_seq = 0;
      if (!s.timeout_ring.empty() && s.timeout_ring.front().at < window_end) {
        ring_at = s.timeout_ring.front().at;
        ring_seq = s.timeout_ring.front().seq;
      }
      TimeMs heap_at = kInf;
      std::uint64_t heap_seq = 0;
      {
        TimeMs at;
        std::uint64_t seq;
        if (s.events.peek(&at, &seq) && at < window_end) {
          heap_at = at;
          heap_seq = seq;
        }
      }
      if (have_inbox && inbox_at <= ring_at && inbox_at <= heap_at) {
        const InboxEntry e = s.inbox[s.inbox_cursor++];
        handle_inbox(s, e, tally, sink);
        continue;
      }
      if (ring_at < heap_at || (ring_at == heap_at && ring_seq < heap_seq)) {
        if (!std::isfinite(ring_at)) break;
        const TimeoutEntry front = s.timeout_ring.front();
        s.timeout_ring.pop_front();
        s.events.advance_to(front.at);
        handle_timeout(s, front.id, front.at, tally, sink);
        continue;
      }
      if (!std::isfinite(heap_at)) break;
      TimeMs at;
      ClusterEvent ev;
      s.events.pop(&at, &ev);
      switch (ev.kind) {
        case ClusterEvent::Kind::kCompletion:
          handle_completion(s, ev.id, at, tally, sink);
          break;
        case ClusterEvent::Kind::kCrash:
          handle_crash(s, ev.id, at, tally, sink);
          break;
        case ClusterEvent::Kind::kTimeout:
          handle_timeout(s, ev.id, at, tally, sink);
          break;
        default:
          break;  // kArrival/kRetry/kNodeCrash never enter shard heaps
      }
    }
    s.inbox.clear();
    s.inbox_cursor = 0;
    // Publish the earliest remaining local event for the coordinator's
    // idle-window jump.
    prune_timeout_ring(s);
    s.next_at = kInf;
    if (!s.timeout_ring.empty()) s.next_at = s.timeout_ring.front().at;
    TimeMs at;
    if (s.events.peek(&at) && at < s.next_at) s.next_at = at;
  };

  // ---- coordinator: routing, crashes, merging ----

  auto coord_sink = [&](const Transfer& t) { pending.push_back(t); };

  // Routes one dispatch at barrier time against the published snapshot.
  auto route_one = [&](std::uint32_t id, TimeMs at, InboxEntry::Kind kind) {
    ReqState& r = reqs[id];
    if (kind == InboxEntry::Kind::kRedispatch && r.has_timeout_ev &&
        r.deadline <= at) {
      // The transfer was clamped past its deadline (possible only with a
      // jitter-degenerate backoff floor): the request times out at its
      // deadline instead of re-dispatching.
      r.has_timeout_ev = false;
      ++coord.timed_out;
      if (tracer) {
        tracer->instant_at("request.timeout", "fault", obs::kVirtualPid,
                           request_track, r.deadline,
                           {{"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kTimeout, rid(id), r.attempt,
                         r.deadline, 0.0,
                         static_cast<std::int32_t>(r.node));
      }
      r.phase = ReqState::Phase::kDone;
      end_request_span(id, r.deadline);
      coord_last = std::max(coord_last, r.deadline);
      return;
    }
    const std::uint32_t k = router.pick(snapshot.data(), node_count);
    snapshot.apply_pick(k);
    shards[k].inbox.push_back(InboxEntry{at, id, kind});
    ++barrier_routed;
    if (kind == InboxEntry::Kind::kRedispatch) ++transfer_count;
  };

  // Publishes every node's view for a barrier batch. Stateless policies
  // never read the views, so the (reap + publish) pass is skipped and
  // reaping happens lazily at dispatch, exactly as inside windows.
  auto publish_views = [&](TimeMs at) {
    if (!stateful_router) return;
    for (std::uint32_t k = 0; k < node_count; ++k) {
      Shard& s = shards[k];
      reap_node(s, at);
      snapshot.publish(
          k, static_cast<std::uint32_t>(s.busy + s.queued_live),
          static_cast<std::uint32_t>(s.warm.size()));
    }
  };

  std::size_t next_arrival = 0;

  // Routes every dispatch whose time falls in [B, window_end): pending
  // transfers merged with the arrival stream in (time, arrivals-first,
  // id) order. Late transfers (clamped) deliver at B.
  auto route_batch = [&](TimeMs B, TimeMs window_end) {
    std::sort(pending.begin(), pending.end(),
              [](const Transfer& a, const Transfer& b) {
                return a.at != b.at ? a.at < b.at : a.id < b.id;
              });
    publish_views(B);
    std::size_t p = 0;
    while (true) {
      const bool have_arr = next_arrival < n;
      const TimeMs a_at = have_arr ? arrival_at(next_arrival) : kInf;
      const bool have_p = p < pending.size();
      const TimeMs p_at = have_p ? std::max(pending[p].at, B) : kInf;
      if (a_at < window_end && a_at <= p_at) {
        route_one(arrival_id(next_arrival), a_at, InboxEntry::Kind::kNew);
        ++next_arrival;
      } else if (p_at < window_end) {
        route_one(pending[p].id, p_at, InboxEntry::Kind::kRedispatch);
        ++p;
      } else {
        break;
      }
    }
    pending.erase(pending.begin(), pending.begin() + p);
  };

  // Single-window fast path sizing: with the whole run routed in one
  // batch, per-node inbox and log reservations can be exact, so the
  // parallel phase allocates nothing.
  if (single_window) {
    batch_picks.clear();
    for (std::size_t i = 0; i < n; ++i) {
      publish_views(arrival_at(i));
      batch_picks.push_back(router.pick(snapshot.data(), node_count));
      snapshot.apply_pick(batch_picks.back());
    }
    std::vector<std::size_t> routed_k(node_count, 0);
    for (const std::uint32_t k : batch_picks) ++routed_k[k];
    for (std::uint32_t k = 0; k < node_count; ++k) {
      shards[k].inbox.reserve(routed_k[k]);
      // live+/- (<= 2 per cold start <= 2x routed), queue+/- and one
      // latency per dispatch: 5x routed bounds the whole-run log.
      shards[k].log.reserve(5 * routed_k[k] + 16);
    }
    for (std::size_t i = 0; i < n; ++i) {
      shards[batch_picks[i]].inbox.push_back(InboxEntry{
          arrival_at(i), arrival_id(i), InboxEntry::Kind::kNew});
      ++barrier_routed;
    }
    next_arrival = n;
  }

  // Merges every shard's window log into the global trajectory in
  // (time, node) order: peaks are sampled at their only increase points
  // (kLiveUp / kQueueUp), latencies fold in canonical order. K-way merge
  // through a cursor min-heap — O(E log K), not O(E * K), so the serial
  // barrier work stays a small fraction of the windows it merges.
  std::vector<std::uint32_t> merge_heap(node_count);
  auto merge_less = [&](std::uint32_t a, std::uint32_t b) {
    const TimeMs at_a = shards[a].log[merge_cursor[a]].at;
    const TimeMs at_b = shards[b].log[merge_cursor[b]].at;
    // std::push/pop_heap build a max-heap; invert for (at, node) min.
    return at_a != at_b ? at_a > at_b : a > b;
  };
  auto merge_logs = [&]() {
    merge_heap.clear();
    for (std::uint32_t k = 0; k < node_count; ++k) {
      merge_cursor[k] = 0;
      if (!shards[k].log.empty()) merge_heap.push_back(k);
    }
    std::make_heap(merge_heap.begin(), merge_heap.end(), merge_less);
    while (!merge_heap.empty()) {
      std::pop_heap(merge_heap.begin(), merge_heap.end(), merge_less);
      const std::uint32_t best = merge_heap.back();
      merge_heap.pop_back();
      const LogEntry& e = shards[best].log[merge_cursor[best]++];
      if (merge_cursor[best] < shards[best].log.size()) {
        merge_heap.push_back(best);
        std::push_heap(merge_heap.begin(), merge_heap.end(), merge_less);
      }
      switch (e.kind) {
        case LogEntry::Kind::kLiveUp:
          ++live_now;
          result.peak_instances = std::max(result.peak_instances, live_now);
          break;
        case LogEntry::Kind::kLiveDown:
          --live_now;
          break;
        case LogEntry::Kind::kQueueUp:
          ++queued_now;
          result.peak_queue = std::max(result.peak_queue, queued_now);
          break;
        case LogEntry::Kind::kQueueDown:
          --queued_now;
          break;
        case LogEntry::Kind::kLatency:
          latencies.push_back(e.value);
          if (latency_hist) latency_hist->observe(e.value);
          break;
      }
    }
    for (Shard& s : shards) s.log.clear();
  };

  // Coordinator-side node crash at its statically-known time: fail the
  // in-flight attempts (ascending id), drain the warm pool, re-route the
  // queue — all before the next window opens, matching the sequential
  // crash-first tie order.
  auto process_crash = [&](const CrashPoint& c) {
    Shard& s = shards[c.k];
    account(s, c.at);
    coord_last = std::max(coord_last, c.at);
    ++result.node_crashes;
    ++result.node_results[c.k].node_crashes;
    ++s.node_crashes;
    if (tracer) {
      tracer->instant_at("fault.node_crash", "fault", obs::kVirtualPid,
                         request_track, c.at,
                         {{"node", static_cast<double>(c.k)},
                          {"victims", static_cast<double>(s.busy)}});
    }
    if (recorder) {
      recorder->record(obs::RecKind::kNodeCrash, 0, 0, c.at,
                       static_cast<double>(s.busy),
                       static_cast<std::int32_t>(c.k));
    }
    for (std::uint32_t victim = 0; victim < static_cast<std::uint32_t>(n);
         ++victim) {
      ReqState& r = reqs[victim];
      if (r.phase != ReqState::Phase::kRunning || r.node != c.k) continue;
      s.events.cancel(r.pending_ev);
      --s.busy;
      --s.live;
      --live_now;
      count_fault(s, FaultKind::kNodeCrash, victim, r.attempt, c.at,
                  static_cast<double>(c.k));
      fail_attempt(s, victim, c.at, 0.0, coord, coord_sink);
    }
    // The warm pool dies with the node.
    while (!s.warm.empty()) {
      s.warm.pop_front();
      --s.live;
      --live_now;
    }
    // Queued requests go back through the router at the crash time; the
    // node itself restarts immediately (cold), so the router may well
    // pick it again. Their timeouts travel with them.
    publish_views(c.at);
    while (const auto qid = take_queued(s)) {
      --queued_now;
      ReqState& r = reqs[*qid];
      if (r.has_timeout_ev) {
        if (r.timeout_via_ring) {
          r.ring_live = false;
        } else if (r.timeout_node == s.k) {
          s.events.cancel(r.timeout_ev);
        }
        r.timeout_node = kTimeoutInFlight;
        r.timeout_via_ring = false;
      }
      route_one(*qid, c.at, InboxEntry::Kind::kRedispatch);
    }
  };

  // ---- the window loop ----

  const std::size_t worker_count = std::min<std::size_t>(
      node_count, ThreadPool::resolve_workers(
                      config.sim_threads == 0 ? 0 : config.sim_threads));
  const bool parallel = worker_count > 1;

  std::optional<ThreadPool> pool;
  std::optional<sim::WindowBarrier> barrier;
  std::vector<std::future<void>> worker_done;
  if (parallel) {
    pool.emplace(worker_count);
    barrier.emplace(worker_count);
    worker_done.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w) {
      worker_done.push_back(pool->submit([&, w] {
        obs::FlightRecorder::bind_thread_stripe(w);
        std::uint64_t seen = 0;
        double window_end = 0.0;
        while (barrier->wait_open(&seen, &window_end)) {
          for (std::uint32_t k = static_cast<std::uint32_t>(w);
               k < node_count; k += static_cast<std::uint32_t>(worker_count)) {
            process_window(shards[k], window_end);
          }
          barrier->report_done();
        }
      }));
    }
  }

  auto run_window = [&](TimeMs window_end) {
    if (parallel) {
      barrier->open(window_end);
      barrier->wait_done();
    } else {
      for (Shard& s : shards) process_window(s, window_end);
    }
    ++window_count;
    for (Shard& s : shards) {
      if (!s.outbox.empty()) {
        for (const Transfer& t : s.outbox) pending.push_back(t);
        s.outbox.clear();
      }
    }
    merge_logs();
    if (tracer) {
      tracer->counter_at("cluster.queue_depth",
                         static_cast<double>(queued_now), obs::kVirtualPid,
                         0, std::isfinite(window_end)
                                ? window_end
                                : std::max(coord_last, config.horizon_ms));
    }
  };

  std::size_t next_crash = 0;
  TimeMs B = 0.0;
  for (;;) {
    TimeMs t_min = kInf;
    if (next_arrival < n) t_min = std::min(t_min, arrival_at(next_arrival));
    for (const Transfer& t : pending) t_min = std::min(t_min, t.at);
    if (next_crash < crashes.size()) {
      t_min = std::min(t_min, crashes[next_crash].at);
    }
    for (const Shard& s : shards) {
      t_min = std::min(t_min, s.next_at);
      if (s.inbox_cursor < s.inbox.size()) {
        t_min = std::min(t_min, s.inbox[s.inbox_cursor].at);
      }
    }
    if (!std::isfinite(t_min)) break;
    B = std::max(B, t_min);  // idle-window jump
    while (next_crash < crashes.size() && crashes[next_crash].at <= B) {
      process_crash(crashes[next_crash]);
      ++next_crash;
    }
    TimeMs window_end = B + width;  // inf-safe
    if (next_crash < crashes.size() && crashes[next_crash].at < window_end) {
      window_end = crashes[next_crash].at;
    }
    if (!single_window) route_batch(B, window_end);
    run_window(window_end);
    B = window_end;
    if (!std::isfinite(B)) B = 0.0;  // loop exits via t_min next round
  }

  if (parallel) {
    barrier->close();
    for (auto& f : worker_done) f.get();
  }

  // ---- teardown: deterministic fold in node order ----

  Tally total = coord;
  double busy_area = 0.0;
  TimeMs last_event = coord_last;
  for (std::uint32_t k = 0; k < node_count; ++k) {
    const Shard& s = shards[k];
    total.fold(s.tally);
    busy_area += s.busy_area;
    last_event = std::max(last_event, s.last_event);
    NodeResult& nr = result.node_results[k];
    nr.routed = s.routed;
    nr.completed = s.tally.completed;
    nr.cold_starts = s.tally.cold_starts;
    nr.peak_queue = s.peak_queue;
  }
  result.completed = total.completed;
  result.cold_starts = total.cold_starts;
  result.failed = total.failed;
  result.retried = total.retried;
  result.timed_out = total.timed_out;
  result.dropped = total.dropped;

  if (!latencies.empty()) {
    result.mean_ms = mean_of(latencies);
    const Cdf cdf(latencies);  // one sort for all three quantiles
    result.p50_ms = cdf.quantile(0.50);
    result.p95_ms = cdf.quantile(0.95);
    result.p99_ms = cdf.quantile(0.99);
  }
  // Streaming accumulator in the merged (time, node) completion order
  // (deterministic: virtual time), merged across seeds by run_batch.
  for (double latency : latencies) result.latency_stats.add(latency);
  const TimeMs span = std::max(last_event, config.horizon_ms);
  result.achieved_rps =
      span > 0.0 ? static_cast<double>(result.completed) / (span / 1000.0)
                 : 0.0;
  result.mean_busy_instances = span > 0.0 ? busy_area / span : 0.0;

  if (metrics) {
    metrics->counter("cluster.cold_starts")
        .inc(static_cast<std::int64_t>(total.cold_starts));
    metrics->counter("chiron.fault.injected")
        .inc(static_cast<std::int64_t>(total.fault_total()));
    metrics->counter("chiron.fault.injected.cold_start")
        .inc(static_cast<std::int64_t>(total.fault_kind[0]));
    metrics->counter("chiron.fault.injected.crash")
        .inc(static_cast<std::int64_t>(total.fault_kind[1]));
    metrics->counter("chiron.fault.injected.straggler")
        .inc(static_cast<std::int64_t>(total.fault_kind[2]));
    metrics->counter("chiron.fault.injected.node_crash")
        .inc(static_cast<std::int64_t>(total.fault_kind[3]));
    metrics->counter("chiron.retry.attempts")
        .inc(static_cast<std::int64_t>(total.retried));
    metrics->counter("chiron.request.timeout")
        .inc(static_cast<std::int64_t>(total.timed_out));
    for (std::uint32_t k = 0; k < node_count; ++k) {
      metrics->counter("cluster.node." + std::to_string(k) + ".cold_starts")
          .inc(static_cast<std::int64_t>(shards[k].tally.cold_starts));
    }
    // Gauge replay: high-water = the merged peak, final value = the
    // (empty) end-of-run depth — matching the sequential loop's last
    // set() exactly.
    obs::Gauge& qg = metrics->gauge("cluster.queue_depth");
    qg.set(static_cast<double>(result.peak_queue));
    qg.set(static_cast<double>(queued_now));
    metrics->gauge("cluster.peak_instances")
        .set(static_cast<double>(result.peak_instances));
    // Engine introspection: window/transfer volume for the obs endpoint.
    metrics->counter("cluster.sim.windows")
        .inc(static_cast<std::int64_t>(window_count));
    metrics->counter("cluster.sim.transfers")
        .inc(static_cast<std::int64_t>(transfer_count));
    metrics->counter("cluster.sim.barrier_routed")
        .inc(static_cast<std::int64_t>(barrier_routed));
  }

  CHIRON_LOG(kDebug) << "cluster sim windowed (" << node_count << " nodes, "
                     << to_string(config.router) << ", " << worker_count
                     << " threads, " << window_count << " windows, "
                     << transfer_count << " transfers): " << result.completed
                     << "/" << result.offered << " requests, "
                     << result.cold_starts << " cold starts, "
                     << result.failed << " faults, " << result.retried
                     << " retries, " << result.timed_out << " timeouts, "
                     << result.dropped << " drops, peak queue "
                     << result.peak_queue << ", " << result.node_crashes
                     << " node crashes";
  return result;
}

}  // namespace cluster_detail
}  // namespace chiron
