#include "platform/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/log.h"
#include "common/thread_pool.h"
#include "metrics/stats.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "platform/cluster_internal.h"
#include "sim/event_queue.h"

namespace chiron {

// The POD event, the ring, and the capacity arithmetic live in
// cluster_internal.h now, shared verbatim with the windowed parallel
// engine (cluster_parallel.cc).
using cluster_detail::ClusterEvent;
using cluster_detail::ClusterEventQueue;
using cluster_detail::Ring;
using cluster_detail::fault_rec_kind;
using cluster_detail::floor_capacity;
using cluster_detail::node_capacity;

namespace {

/// Instances the cluster can host with every node's resources pooled into
/// one cluster-wide pot (the pre-sharding model, kept as the pooled
/// loops' capacity). Each resource dimension bounds capacity
/// independently: a memory-only (or cpu-only) deployment is limited by
/// its nonzero dimension alone.
std::size_t cluster_capacity(const ResourceUsage& usage,
                             const RuntimeParams& params,
                             const ClusterConfig& config) {
  const double total_cpus =
      static_cast<double>(params.node_cpus * config.nodes);
  const double total_mem =
      params.node_memory_mb * static_cast<double>(config.nodes);
  double capacity = std::numeric_limits<double>::infinity();
  if (usage.cpus > 0.0) capacity = std::min(capacity, total_cpus / usage.cpus);
  if (usage.memory_mb > 0.0) {
    capacity = std::min(capacity, total_mem / usage.memory_mb);
  }
  return std::max<std::size_t>(1, floor_capacity(capacity));
}

}  // namespace

TimeMs cold_start_penalty(const RuntimeParams& params,
                          std::size_t cascading_stages) {
  return params.sandbox_cold_start_ms *
         static_cast<TimeMs>(std::max<std::size_t>(1, cascading_stages));
}

ClusterSimulator::ClusterSimulator(ClusterConfig config, RuntimeParams params)
    : config_(config), params_(params) {}

ClusterResult ClusterSimulator::run(const Backend& backend,
                                    std::size_t cascading_stages) const {
  // Generate the arrival process and mint the request-id block up front,
  // then hand off to the shared core. run_batch() does the same per
  // (spec, seed) job *sequentially* before fanning out, which is what
  // keeps batch results independent of the pool size.
  Rng rng(config_.seed);
  ArrivalGenerator arrivals(config_.arrivals, config_.offered_rps,
                            rng.split());
  const std::vector<TimeMs> arrival_times =
      arrivals.generate(config_.horizon_ms);
  return run_prepared(backend, cascading_stages, arrival_times,
                      obs::mint_request_ids(arrival_times.size()));
}

ClusterResult ClusterSimulator::run_reference(
    const Backend& backend, std::size_t cascading_stages) const {
  Rng rng(config_.seed);
  ArrivalGenerator arrivals(config_.arrivals, config_.offered_rps,
                            rng.split());
  const std::vector<TimeMs> arrival_times =
      arrivals.generate(config_.horizon_ms);
  return run_prepared_reference(backend, cascading_stages, arrival_times,
                                obs::mint_request_ids(arrival_times.size()));
}

// ---------------------------------------------------------------------------
// Sharded typed-event hot path.
//
// Every node owns its own capacity, warm-instance ring, and waiting
// queue, and the Router places each dispatch. The loop keeps the pooled
// loop's event discipline — the lazy arrival merge, the timeout ring,
// tombstoned queues, all allocation-free in steady state — so a one-node
// run issues the identical schedule() sequence, draws the Rng in the
// identical order, and performs the identical float arithmetic as
// run_prepared_pooled below: their ClusterResults are bit-identical
// (asserted by ClusterParityTest), which chains the sharded loop to the
// original closure-loop oracle.
// ---------------------------------------------------------------------------
ClusterResult ClusterSimulator::run_prepared(
    const Backend& backend, std::size_t cascading_stages,
    const std::vector<TimeMs>& arrival_times, std::uint64_t id_base) const {
  const std::uint32_t node_count =
      static_cast<std::uint32_t>(std::max<std::size_t>(1, config_.nodes));
  if (node_count > 1) {
    // Multi-node runs execute on the windowed conservative-PDES engine
    // (cluster_parallel.cc): per-node event shards advancing in time
    // windows, cross-node retries and crash drains delivered at window
    // barriers. Its sim_threads == 1 schedule IS the sequential
    // semantics; higher thread counts replay it bit-identically
    // (ShardedParallelParityTest). The single-node path below stays on
    // the global-heap loop, byte-identical to the pooled loop under
    // every policy — the retained oracle chain.
    return cluster_detail::run_prepared_windowed(
        config_, params_, backend, cascading_stages, arrival_times, id_base);
  }
  const std::size_t per_node_capacity =
      node_capacity(backend.resources(), params_);
  const std::size_t n = arrival_times.size();

  // Reconstruct the seeded stream exactly as run() threads it: the first
  // split fed the arrival generator, the second (further below) drives
  // service times, and the third seeds the router — taken last so the
  // first two streams match the pooled loop draw-for-draw.
  Rng rng(config_.seed);
  (void)rng.split();

  ClusterResult result;
  result.offered = n;
  result.request_id_base = id_base;
  result.node_results.resize(node_count);

  const FaultInjector injector(config_.faults);
  const RetryPolicy& retry = config_.retry;
  const bool has_timeout = retry.timeout_ms > 0.0;
  const bool sorted_arrivals =
      std::is_sorted(arrival_times.begin(), arrival_times.end());

  // Observability sinks: all cluster events carry *simulated* timestamps.
  obs::Tracer* tracer =
      config_.tracer && config_.tracer->enabled() ? config_.tracer : nullptr;
  obs::MetricsRegistry* metrics = config_.metrics;
  const int request_track =
      tracer ? tracer->new_track("cluster.requests", obs::kVirtualPid) : 0;
  obs::Counter* cold_counter =
      metrics ? &metrics->counter("cluster.cold_starts") : nullptr;
  obs::Gauge* queue_gauge =
      metrics ? &metrics->gauge("cluster.queue_depth") : nullptr;
  obs::Histogram* latency_hist =
      metrics ? &metrics->histogram("cluster.e2e_latency_ms") : nullptr;
  obs::Counter* fault_counter =
      metrics ? &metrics->counter("chiron.fault.injected") : nullptr;
  obs::Counter* retry_counter =
      metrics ? &metrics->counter("chiron.retry.attempts") : nullptr;
  obs::Counter* timeout_counter =
      metrics ? &metrics->counter("chiron.request.timeout") : nullptr;
  obs::FlightRecorder* recorder =
      config_.recorder && config_.recorder->enabled() ? config_.recorder
                                                      : nullptr;

  // Per-kind fault sinks resolved once (the pooled loop's trick), plus
  // the node-crash kind only the sharded loop can fire. Node-crash
  // victims are counted under their own kind, so the cold_start + crash
  // == failed invariant of node-crash-free runs is undisturbed.
  auto kind_index = [](FaultKind kind) -> int {
    switch (kind) {
      case FaultKind::kColdStart: return 0;
      case FaultKind::kCrash: return 1;
      case FaultKind::kStraggler: return 2;
      case FaultKind::kNodeCrash: return 3;
      default: return -1;
    }
  };
  obs::Counter* kind_counter[4] = {nullptr, nullptr, nullptr, nullptr};
  if (metrics) {
    kind_counter[0] = &metrics->counter("chiron.fault.injected.cold_start");
    kind_counter[1] = &metrics->counter("chiron.fault.injected.crash");
    kind_counter[2] = &metrics->counter("chiron.fault.injected.straggler");
    kind_counter[3] = &metrics->counter("chiron.fault.injected.node_crash");
  }
  const std::string fault_label[4] = {"fault.cold_start", "fault.crash",
                                      "fault.straggler", "fault.node_crash"};

  // Per-node observability: cluster.node.<k>.{cold_starts,queue_depth}.
  std::vector<obs::Counter*> node_cold_counter(node_count, nullptr);
  std::vector<obs::Gauge*> node_queue_gauge(node_count, nullptr);
  if (metrics) {
    for (std::uint32_t k = 0; k < node_count; ++k) {
      const std::string prefix = "cluster.node." + std::to_string(k);
      node_cold_counter[k] = &metrics->counter(prefix + ".cold_starts");
      node_queue_gauge[k] = &metrics->gauge(prefix + ".queue_depth");
    }
  }

  // The process-unique trace id of arrival `id`.
  auto rid = [id_base](std::uint64_t id) { return id_base + id; };

  // Per-request recovery state: the pooled ReqState plus the node the
  // current attempt was placed on.
  struct ReqState {
    TimeMs arrival = 0.0;
    std::uint32_t attempt = 1;
    std::uint32_t node = 0;  ///< where the current attempt was dispatched
    enum class Phase : std::uint8_t {
      kWaiting,   ///< arrival not yet processed
      kQueued,    ///< waiting for capacity on `node`
      kRunning,   ///< on an instance of `node`
      kBackoff,   ///< waiting to re-attempt (pending_ev = retry)
      kDone,
    } phase = Phase::kWaiting;
    ClusterEventQueue::Handle pending_ev{};
    ClusterEventQueue::Handle timeout_ev{};
    bool has_timeout_ev = false;
  };
  std::vector<ReqState> reqs(n);

  auto count_fault = [&](FaultKind kind, std::uint32_t id,
                         std::uint32_t attempt, TimeMs now,
                         double value = 0.0) {
    const int k = kind_index(kind);
    if (fault_counter) fault_counter->inc();
    if (k >= 0 && kind_counter[k]) kind_counter[k]->inc();
    if (tracer && k >= 0) {
      tracer->instant_at(fault_label[k], "fault", obs::kVirtualPid,
                         request_track, now,
                         {{"request", static_cast<double>(rid(id))},
                          {"attempt", static_cast<double>(attempt)}});
    }
    if (recorder) {
      recorder->record(fault_rec_kind(kind), rid(id), attempt, now, value,
                       static_cast<std::int32_t>(reqs[id].node));
    }
  };

  // Per-node serving state. Warm rings stay monotone (pushes happen at
  // event times), queues tombstone timed-out entries lazily — exactly
  // the pooled structures, one set per node. The cluster-wide totals
  // drive the global accounting (busy_area, peak_instances, peak_queue)
  // with the same arithmetic the pooled loop performs.
  struct NodeState {
    Ring<TimeMs> warm;
    Ring<std::uint32_t> queue;
    std::size_t live = 0;  ///< busy + warm instances on this node
    std::size_t busy = 0;
    std::size_t queued_live = 0;  ///< queue entries minus tombstones
  };
  std::vector<NodeState> nodes(node_count);
  for (NodeState& node : nodes) {
    node.warm.reserve(std::min(per_node_capacity, n) + 1);
    node.queue.reserve(n + 1);  // a request occupies at most one entry
  }
  std::size_t live_total = 0;
  std::size_t busy_total = 0;
  std::size_t queued_total = 0;

  // Router views are refreshed in place before every pick: plain integer
  // stores, no allocation.
  std::vector<RouterNodeView> views(node_count);

  // Constant-delay timeouts form their own sorted stream exactly as in
  // the pooled loop (see run_prepared_pooled for the full rationale).
  struct TimeoutEntry {
    TimeMs at;
    std::uint64_t seq;
    std::uint32_t id;
  };
  const bool use_timeout_ring = has_timeout && sorted_arrivals;
  Ring<TimeoutEntry> timeout_ring;
  if (use_timeout_ring) timeout_ring.reserve(n + 1);

  auto note_queue_depth = [&](TimeMs now) {
    if (queue_gauge) queue_gauge->set(static_cast<double>(queued_total));
    if (tracer) {
      tracer->counter_at("cluster.queue_depth",
                         static_cast<double>(queued_total), obs::kVirtualPid,
                         0, now);
    }
  };
  auto note_node_queue = [&](std::uint32_t k) {
    if (node_queue_gauge[k]) {
      node_queue_gauge[k]->set(static_cast<double>(nodes[k].queued_live));
    }
  };

  std::vector<double> latencies;
  latencies.reserve(n);
  double busy_area = 0.0;  // integral of busy instances over time
  TimeMs last_event = 0.0;
  Rng run_rng = rng.split();  // second split: service times (pooled order)
  Router router(config_.router, node_count, rng.split());  // third split

  // Event slab sized as in the pooled loop, plus one slot per scheduled
  // node crash and heap slack for the cancellations its victims cause.
  const std::size_t crash_events =
      config_.faults.node_crash > 0.0 ? node_count : 0;
  const std::size_t crash_slack =
      crash_events * std::min(per_node_capacity, n);
  ClusterEventQueue events;
  events.reserve(2 * n + crash_events + 8,
                 4 * n + crash_events + crash_slack + 8);
  const TimeMs cold_penalty = cold_start_penalty(params_, cascading_stages);

  auto account = [&](TimeMs now) {
    busy_area += static_cast<double>(busy_total) * (now - last_event);
    last_event = now;
  };

  // Reclaims one node's warm instances idle past the keep-alive: expired
  // entries are exactly a prefix of the monotone ring.
  auto reap_node = [&](std::uint32_t k, TimeMs now) {
    NodeState& node = nodes[k];
    while (!node.warm.empty() &&
           now - node.warm.front() >= config_.keep_alive_ms) {
      node.warm.pop_front();
      --node.live;
      --live_total;
    }
  };
  auto reap_all = [&](TimeMs now) {
    for (std::uint32_t k = 0; k < node_count; ++k) reap_node(k, now);
  };

  // Marks `id` terminal and disarms its outstanding timeout (in ring
  // mode the ring entry becomes a lazy tombstone).
  auto finalize = [&](std::uint32_t id) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kDone;
    if (r.has_timeout_ev) {
      if (!use_timeout_ring) events.cancel(r.timeout_ev);
      r.has_timeout_ev = false;
    }
  };

  auto end_request_span = [&](std::uint32_t id, TimeMs now) {
    if (tracer) {
      tracer->async_end_at("request", "sim", obs::kVirtualPid, request_track,
                           now, rid(id));
    }
  };

  // Pops node `k`'s next still-live queued request, skipping tombstones.
  auto take_queued = [&](std::uint32_t k) -> std::optional<std::uint32_t> {
    NodeState& node = nodes[k];
    while (!node.queue.empty()) {
      const std::uint32_t id = node.queue.pop_front();
      if (reqs[id].phase == ReqState::Phase::kQueued) {
        --node.queued_live;
        --queued_total;
        note_node_queue(k);
        return id;
      }
    }
    return std::nullopt;
  };

  // Handles one failed attempt at time `t`: schedules a capped-exponential
  // backoff retry, or drops the request once attempts are exhausted.
  auto fail_attempt = [&](std::uint32_t id, TimeMs t, TimeMs extra_delay) {
    ReqState& r = reqs[id];
    ++result.failed;
    if (r.attempt < retry.max_attempts) {
      ++result.retried;
      if (retry_counter) retry_counter->inc();
      const TimeMs backoff = injector.retry_backoff_ms(retry, r.attempt, id);
      if (tracer) {
        tracer->complete_at("retry.backoff", "fault", obs::kVirtualPid,
                            request_track, t, extra_delay + backoff,
                            {{"attempt", static_cast<double>(r.attempt)},
                             {"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kRetryBackoff, rid(id), r.attempt, t,
                         extra_delay + backoff,
                         static_cast<std::int32_t>(r.node));
      }
      ++r.attempt;
      r.phase = ReqState::Phase::kBackoff;
      r.pending_ev =
          events.schedule(t + extra_delay + backoff,
                          ClusterEvent{ClusterEvent::Kind::kRetry, id});
    } else {
      ++result.dropped;
      if (recorder) {
        recorder->record(obs::RecKind::kDrop, rid(id), r.attempt, t, 0.0,
                         static_cast<std::int32_t>(r.node));
      }
      finalize(id);
      end_request_span(id, t);
    }
  };

  // Places `id` on an instance of its node at `now` (startup = 0 for warm
  // reuse) and schedules its completion — or its mid-execution crash.
  auto begin_service = [&](std::uint32_t id, TimeMs now, TimeMs startup) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kRunning;
    ++nodes[r.node].busy;
    ++busy_total;
    TimeMs service = backend.run(run_rng).e2e_latency_ms;
    if (injector.straggles(id, r.attempt)) {
      service *= config_.faults.straggler_multiplier;
      count_fault(FaultKind::kStraggler, id, r.attempt, now,
                  config_.faults.straggler_multiplier);
    }
    if (recorder) {
      recorder->record(obs::RecKind::kServiceBegin, rid(id), r.attempt, now,
                       service, static_cast<std::int32_t>(r.node));
    }
    if (injector.crashes(id, r.attempt)) {
      const TimeMs crash_at =
          now + startup + service * config_.faults.crash_point;
      r.pending_ev = events.schedule(
          crash_at, ClusterEvent{ClusterEvent::Kind::kCrash, id});
      return;
    }
    const TimeMs finish = now + startup + service;
    r.pending_ev = events.schedule(
        finish, ClusterEvent{ClusterEvent::Kind::kCompletion, id});
  };

  // Places `id` on node `k` — routing already decided: warm reuse, cold
  // start if the node has headroom, else the node's queue.
  auto dispatch_to = [&](std::uint32_t id, std::uint32_t k, TimeMs now) {
    account(now);
    reap_node(k, now);
    ReqState& r = reqs[id];
    r.node = k;
    ++result.node_results[k].routed;
    NodeState& node = nodes[k];
    if (!node.warm.empty()) {
      node.warm.pop_back();  // LIFO keeps hot instances hot
      begin_service(id, now, 0.0);
    } else if (node.live < per_node_capacity) {
      if (injector.cold_start_fails(id, r.attempt)) {
        // The sandbox dies during boot: the boot time is still paid (it
        // delays the retry) but no instance comes up.
        count_fault(FaultKind::kColdStart, id, r.attempt, now, cold_penalty);
        fail_attempt(id, now, cold_penalty);
        return;
      }
      ++node.live;
      ++live_total;
      result.peak_instances = std::max(result.peak_instances, live_total);
      ++result.cold_starts;
      ++result.node_results[k].cold_starts;
      if (cold_counter) cold_counter->inc();
      if (node_cold_counter[k]) node_cold_counter[k]->inc();
      if (tracer) {
        tracer->instant_at("cluster.cold_start", "sim", obs::kVirtualPid,
                           request_track, now,
                           {{"request", static_cast<double>(rid(id))},
                            {"node", static_cast<double>(k)}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kColdStart, rid(id), r.attempt, now,
                         cold_penalty, static_cast<std::int32_t>(k));
      }
      begin_service(id, now, cold_penalty);
    } else {
      r.phase = ReqState::Phase::kQueued;
      node.queue.push_back(id);
      ++node.queued_live;
      ++queued_total;
      result.peak_queue = std::max(result.peak_queue, queued_total);
      result.node_results[k].peak_queue =
          std::max(result.node_results[k].peak_queue, node.queued_live);
      if (recorder) {
        recorder->record(obs::RecKind::kQueue, rid(id), r.attempt, now,
                         static_cast<double>(node.queued_live),
                         static_cast<std::int32_t>(k));
      }
      note_node_queue(k);
      note_queue_depth(now);
    }
  };

  // Routes one dispatch: reap everywhere first so the router sees
  // accurate warm counts, refresh the views, pick, place.
  auto start_request = [&](std::uint32_t id, TimeMs now) {
    account(now);
    reap_all(now);
    for (std::uint32_t k = 0; k < node_count; ++k) {
      views[k].outstanding =
          static_cast<std::uint32_t>(nodes[k].busy + nodes[k].queued_live);
      views[k].warm = static_cast<std::uint32_t>(nodes[k].warm.size());
    }
    dispatch_to(id, router.pick(views.data(), node_count), now);
  };

  for (std::size_t i = 0; i < n; ++i) reqs[i].arrival = arrival_times[i];

  // Arrival merge: identical to the pooled loop (sorted arrivals never
  // enter the heap; ties go to the arrival).
  std::size_t next_arrival = 0;
  if (!sorted_arrivals) {
    for (std::size_t i = 0; i < n; ++i) {
      events.schedule(arrival_times[i],
                      ClusterEvent{ClusterEvent::Kind::kArrival,
                                   static_cast<std::uint32_t>(i)});
    }
    next_arrival = n;
  }

  // Seeded node crashes enter the heap before the loop starts: each node
  // crashes at most once, at a seeded fraction of the horizon. With
  // node_crash == 0 nothing is scheduled, so the seq stream matches the
  // pooled loop exactly.
  if (config_.faults.node_crash > 0.0) {
    for (std::uint32_t k = 0; k < node_count; ++k) {
      if (!injector.node_crashes(k)) continue;
      const TimeMs crash_at = config_.horizon_ms * injector.node_crash_frac(k);
      events.schedule(crash_at,
                      ClusterEvent{ClusterEvent::Kind::kNodeCrash, k});
    }
  }
  // Scratch for re-routing a crashed node's queue (reserved only when a
  // node crash can fire, so the healthy loop's allocation count is
  // unchanged).
  std::vector<std::uint32_t> requeue;
  if (config_.faults.node_crash > 0.0) requeue.reserve(n);

  auto next_event = [&](TimeMs* at, ClusterEvent* ev) -> bool {
    // Drop tombstoned timeouts (finalized requests) off the ring front.
    while (!timeout_ring.empty() &&
           !reqs[timeout_ring.front().id].has_timeout_ev) {
      timeout_ring.pop_front();
    }
    TimeMs heap_at = 0.0;
    std::uint64_t heap_seq = 0;
    const bool have_heap = events.peek(&heap_at, &heap_seq);
    if (next_arrival < n) {
      const TimeMs arrival_at = arrival_times[next_arrival];
      if ((!have_heap || arrival_at <= heap_at) &&
          (timeout_ring.empty() || arrival_at <= timeout_ring.front().at)) {
        *at = arrival_at;
        *ev = ClusterEvent{ClusterEvent::Kind::kArrival,
                           static_cast<std::uint32_t>(next_arrival)};
        ++next_arrival;
        events.advance_to(arrival_at);
        return true;
      }
    }
    if (!timeout_ring.empty()) {
      const TimeoutEntry& front = timeout_ring.front();
      if (!have_heap || front.at < heap_at ||
          (front.at == heap_at && front.seq < heap_seq)) {
        *at = front.at;
        *ev = ClusterEvent{ClusterEvent::Kind::kTimeout, front.id};
        timeout_ring.pop_front();
        events.advance_to(*at);
        return true;
      }
    }
    return events.pop(at, ev);
  };

  TimeMs at = 0.0;
  ClusterEvent ev;
  while (next_event(&at, &ev)) {
    const std::uint32_t id = ev.id;
    switch (ev.kind) {
      case ClusterEvent::Kind::kArrival: {
        if (tracer) {
          tracer->async_begin_at("request", "sim", obs::kVirtualPid,
                                 request_track, at, rid(id));
        }
        if (recorder) {
          recorder->record(obs::RecKind::kAdmit, rid(id), 1, at);
        }
        if (has_timeout) {
          reqs[id].has_timeout_ev = true;
          if (use_timeout_ring) {
            timeout_ring.push_back(
                TimeoutEntry{at + retry.timeout_ms, events.mint_seq(), id});
          } else {
            reqs[id].timeout_ev = events.schedule(
                at + retry.timeout_ms,
                ClusterEvent{ClusterEvent::Kind::kTimeout, id});
          }
        }
        start_request(id, at);
        break;
      }
      case ClusterEvent::Kind::kCompletion: {
        account(at);
        ReqState& r = reqs[id];
        const std::uint32_t k = r.node;
        --nodes[k].busy;
        --busy_total;
        const TimeMs latency = at - r.arrival;
        latencies.push_back(latency);
        ++result.completed;
        ++result.node_results[k].completed;
        if (recorder) {
          recorder->record(obs::RecKind::kComplete, rid(id), r.attempt, at,
                           latency, static_cast<std::int32_t>(k));
        }
        finalize(id);
        if (latency_hist) latency_hist->observe(latency);
        end_request_span(id, at);
        if (const auto qid = take_queued(k)) {
          note_queue_depth(at);
          // The finishing instance is handed to the queued request
          // directly (it stays on its node): it never visits the warm
          // pool, so reap cannot reclaim it out from under the handoff.
          reap_node(k, at);
          begin_service(*qid, at, 0.0);
        } else {
          nodes[k].warm.push_back(at);
        }
        break;
      }
      case ClusterEvent::Kind::kCrash: {
        account(at);
        ReqState& r = reqs[id];
        const std::uint32_t k = r.node;
        --nodes[k].busy;
        --busy_total;
        --nodes[k].live;
        --live_total;  // the crash takes the sandbox with it
        count_fault(FaultKind::kCrash, id, r.attempt, at);
        fail_attempt(id, at, 0.0);
        // The crash freed a slot on this node: a queued request can now
        // cold-start here (no re-route; the queue is node-local).
        if (const auto qid = take_queued(k)) {
          note_queue_depth(at);
          dispatch_to(*qid, k, at);
        }
        break;
      }
      case ClusterEvent::Kind::kRetry: {
        start_request(id, at);  // re-routes: the dispatcher re-decides
        break;
      }
      case ClusterEvent::Kind::kTimeout: {
        // Abandons `id` at its deadline, wherever it is.
        ReqState& r = reqs[id];
        r.has_timeout_ev = false;
        ++result.timed_out;
        if (timeout_counter) timeout_counter->inc();
        if (tracer) {
          tracer->instant_at("request.timeout", "fault", obs::kVirtualPid,
                             request_track, at,
                             {{"request", static_cast<double>(rid(id))}});
        }
        if (recorder) {
          recorder->record(obs::RecKind::kTimeout, rid(id), r.attempt, at,
                           0.0, static_cast<std::int32_t>(r.node));
        }
        switch (r.phase) {
          case ReqState::Phase::kQueued: {
            // Lazy tombstone: the ring entry stays behind and take_queued
            // skips it; only the live counters move.
            --nodes[r.node].queued_live;
            --queued_total;
            note_node_queue(r.node);
            note_queue_depth(at);
            break;
          }
          case ReqState::Phase::kRunning: {
            // The platform aborts the handler but keeps the sandbox.
            events.cancel(r.pending_ev);
            account(at);
            const std::uint32_t k = r.node;
            --nodes[k].busy;
            --busy_total;
            if (const auto qid = take_queued(k)) {
              note_queue_depth(at);
              reap_node(k, at);
              begin_service(*qid, at, 0.0);
            } else {
              nodes[k].warm.push_back(at);
            }
            break;
          }
          case ReqState::Phase::kBackoff:
            events.cancel(r.pending_ev);
            break;
          default:
            break;
        }
        r.phase = ReqState::Phase::kDone;
        end_request_span(id, at);
        break;
      }
      case ClusterEvent::Kind::kNodeCrash: {
        const std::uint32_t k = id;  // node index, not a request
        account(at);
        NodeState& node = nodes[k];
        ++result.node_crashes;
        ++result.node_results[k].node_crashes;
        if (tracer) {
          tracer->instant_at("fault.node_crash", "fault", obs::kVirtualPid,
                             request_track, at,
                             {{"node", static_cast<double>(k)},
                              {"victims", static_cast<double>(node.busy)}});
        }
        if (recorder) {
          recorder->record(obs::RecKind::kNodeCrash, 0, 0, at,
                           static_cast<double>(node.busy),
                           static_cast<std::int32_t>(k));
        }
        // Fail every in-flight attempt on the node. O(requests), but a
        // node crashes at most once per run.
        for (std::uint32_t victim = 0;
             victim < static_cast<std::uint32_t>(n); ++victim) {
          ReqState& r = reqs[victim];
          if (r.phase != ReqState::Phase::kRunning || r.node != k) continue;
          events.cancel(r.pending_ev);
          --node.busy;
          --busy_total;
          --node.live;
          --live_total;
          count_fault(FaultKind::kNodeCrash, victim, r.attempt, at,
                      static_cast<double>(k));
          fail_attempt(victim, at, 0.0);
        }
        // The warm pool dies with the node.
        while (!node.warm.empty()) {
          node.warm.pop_front();
          --node.live;
          --live_total;
        }
        // Queued requests go back through the router; the node itself
        // restarts immediately (cold), so the router may well pick it
        // again.
        requeue.clear();
        while (auto qid = take_queued(k)) requeue.push_back(*qid);
        if (!requeue.empty()) note_queue_depth(at);
        for (const std::uint32_t q : requeue) start_request(q, at);
        break;
      }
    }
  }

  if (!latencies.empty()) {
    result.mean_ms = mean_of(latencies);
    const Cdf cdf(latencies);  // one sort for all three quantiles
    result.p50_ms = cdf.quantile(0.50);
    result.p95_ms = cdf.quantile(0.95);
    result.p99_ms = cdf.quantile(0.99);
  }
  // Streaming accumulator in completion order (deterministic: virtual
  // time), merged across seeds by run_batch.
  for (double latency : latencies) result.latency_stats.add(latency);
  const TimeMs span = std::max(last_event, config_.horizon_ms);
  result.achieved_rps =
      span > 0.0 ? static_cast<double>(result.completed) / (span / 1000.0)
                 : 0.0;
  result.mean_busy_instances = span > 0.0 ? busy_area / span : 0.0;
  if (metrics) {
    metrics->gauge("cluster.peak_instances")
        .set(static_cast<double>(result.peak_instances));
  }
  CHIRON_LOG(kDebug) << "cluster sim (" << node_count << " nodes, "
                     << to_string(config_.router)
                     << "): " << result.completed << "/" << result.offered
                     << " requests, " << result.cold_starts
                     << " cold starts, " << result.failed << " faults, "
                     << result.retried << " retries, " << result.timed_out
                     << " timeouts, " << result.dropped
                     << " drops, peak queue " << result.peak_queue << ", "
                     << result.node_crashes << " node crashes";
  return result;
}

// ---------------------------------------------------------------------------
// Pooled typed-event loop (pre-sharding model).
//
// Same state machine as run_prepared_reference below, expressed as a
// switch over POD {kind, id} events instead of per-request capturing
// closures. Both loops issue identical schedule() sequences under the
// identical (time, seq) FIFO order, draw from the Rng in the identical
// order, and perform the identical float arithmetic — so their
// ClusterResults are bit-identical (asserted by ClusterParityTest). The
// sharded run_prepared above is in turn bit-identical to this loop at
// nodes == 1, completing the oracle chain.
// ---------------------------------------------------------------------------
ClusterResult ClusterSimulator::run_prepared_pooled(
    const Backend& backend, std::size_t cascading_stages,
    const std::vector<TimeMs>& arrival_times, std::uint64_t id_base) const {
  const std::size_t max_instances =
      cluster_capacity(backend.resources(), params_, config_);
  const std::size_t n = arrival_times.size();

  // Reconstruct the seeded stream exactly as run() threads it: the first
  // split fed the arrival generator, the second (below) drives service
  // times.
  Rng rng(config_.seed);
  (void)rng.split();

  ClusterResult result;
  result.offered = n;

  // Request causality: every request of this run carries a process-unique
  // trace id from the pre-minted block; recorder and tracer events are
  // keyed by it. Fault decisions keep hashing the arrival *index*, so the
  // minted ids never change a seeded run's outcome.
  result.request_id_base = id_base;

  const FaultInjector injector(config_.faults);
  const RetryPolicy& retry = config_.retry;
  const bool has_timeout = retry.timeout_ms > 0.0;
  // Sorted arrivals (what ArrivalGenerator emits) unlock the two stream
  // merges below: lazy arrival admission and the timeout ring. Unsorted
  // times — possible through the public run_prepared — fall back to
  // heaping everything, which is also the reference's order.
  const bool sorted_arrivals =
      std::is_sorted(arrival_times.begin(), arrival_times.end());

  // Observability sinks: all cluster events carry *simulated* timestamps.
  obs::Tracer* tracer =
      config_.tracer && config_.tracer->enabled() ? config_.tracer : nullptr;
  obs::MetricsRegistry* metrics = config_.metrics;
  const int request_track =
      tracer ? tracer->new_track("cluster.requests", obs::kVirtualPid) : 0;
  obs::Counter* cold_counter =
      metrics ? &metrics->counter("cluster.cold_starts") : nullptr;
  obs::Gauge* queue_gauge =
      metrics ? &metrics->gauge("cluster.queue_depth") : nullptr;
  obs::Histogram* latency_hist =
      metrics ? &metrics->histogram("cluster.e2e_latency_ms") : nullptr;
  obs::Counter* fault_counter =
      metrics ? &metrics->counter("chiron.fault.injected") : nullptr;
  obs::Counter* retry_counter =
      metrics ? &metrics->counter("chiron.retry.attempts") : nullptr;
  obs::Counter* timeout_counter =
      metrics ? &metrics->counter("chiron.request.timeout") : nullptr;
  obs::FlightRecorder* recorder =
      config_.recorder && config_.recorder->enabled() ? config_.recorder
                                                      : nullptr;

  // Per-kind fault sinks resolved once, not per event: the reference loop
  // pays a std::string("chiron.fault.injected.") + to_string(kind) build
  // and a registry hash lookup on every injected fault. Only the three
  // kinds the serving loop can fire are mapped (transfer faults belong to
  // the plan backends).
  auto kind_index = [](FaultKind kind) -> int {
    switch (kind) {
      case FaultKind::kColdStart: return 0;
      case FaultKind::kCrash: return 1;
      case FaultKind::kStraggler: return 2;
      default: return -1;
    }
  };
  obs::Counter* kind_counter[3] = {nullptr, nullptr, nullptr};
  if (metrics) {
    kind_counter[0] = &metrics->counter("chiron.fault.injected.cold_start");
    kind_counter[1] = &metrics->counter("chiron.fault.injected.crash");
    kind_counter[2] = &metrics->counter("chiron.fault.injected.straggler");
  }
  const std::string fault_label[3] = {"fault.cold_start", "fault.crash",
                                      "fault.straggler"};

  // The process-unique trace id of arrival `id`.
  auto rid = [id_base](std::uint64_t id) { return id_base + id; };

  auto count_fault = [&](FaultKind kind, std::uint32_t id,
                         std::uint32_t attempt, TimeMs now,
                         double value = 0.0) {
    const int k = kind_index(kind);
    if (fault_counter) fault_counter->inc();
    if (k >= 0 && kind_counter[k]) kind_counter[k]->inc();
    if (tracer && k >= 0) {
      tracer->instant_at(fault_label[k], "fault", obs::kVirtualPid,
                         request_track, now,
                         {{"request", static_cast<double>(rid(id))},
                          {"attempt", static_cast<double>(attempt)}});
    }
    if (recorder) {
      recorder->record(fault_rec_kind(kind), rid(id), attempt, now, value);
    }
  };

  // Instance states. The warm pool holds the idle-since time of each
  // resident but idle instance; pushes happen at event times, which only
  // move forward, so the ring is monotone non-decreasing — expiry is a
  // pop-front-while-expired prefix (O(1) amortized, vs the reference
  // loop's O(W) scan + vector::erase) and reuse pops the hottest
  // instance from the back (LIFO).
  Ring<TimeMs> warm;
  warm.reserve(std::min(max_instances, n) + 1);
  std::size_t live = 0;  // busy + warm instances
  std::size_t busy = 0;

  // Per-request recovery state. A request is terminal (kDone) exactly once:
  // completed, timed out, or dropped after max_attempts.
  struct ReqState {
    TimeMs arrival = 0.0;
    std::uint32_t attempt = 1;
    enum class Phase : std::uint8_t {
      kWaiting,   ///< arrival not yet processed
      kQueued,    ///< waiting for capacity
      kRunning,   ///< on an instance (pending_ev = completion or crash)
      kBackoff,   ///< waiting to re-attempt (pending_ev = retry)
      kDone,
    } phase = Phase::kWaiting;
    ClusterEventQueue::Handle pending_ev{};
    ClusterEventQueue::Handle timeout_ev{};
    bool has_timeout_ev = false;
  };
  std::vector<ReqState> reqs(n);

  // Waiting request ids. Timed-out entries are *lazy tombstones*: they
  // stay in the ring (their ReqState is kDone) and are skipped when
  // popped, so a timeout never pays the reference loop's O(Q) std::find +
  // erase. `queued_live` counts the non-tombstoned entries and is what
  // peak_queue / cluster.queue_depth report — the ring's raw size would
  // over-count tombstones.
  Ring<std::uint32_t> queue;
  queue.reserve(n + 1);  // a request occupies at most one entry at a time
  std::size_t queued_live = 0;

  // Constant-delay timeouts form their own sorted stream: deadlines are
  // arrival + timeout_ms over nondecreasing arrivals, so the earliest
  // pending timeout is always the ring front — no heap entry, no
  // O(log n) sift per request. Timeouts disarmed by finalize stay behind
  // as lazy tombstones (has_timeout_ev == false) and are skipped at the
  // front. Each entry carries the seq the reference would have stamped on
  // its schedule() call (minted from the shared counter), so the
  // three-way merge in next_event reproduces the single-queue (time, seq)
  // order exactly, ties included.
  struct TimeoutEntry {
    TimeMs at;
    std::uint64_t seq;
    std::uint32_t id;
  };
  const bool use_timeout_ring = has_timeout && sorted_arrivals;
  Ring<TimeoutEntry> timeout_ring;
  if (use_timeout_ring) timeout_ring.reserve(n + 1);

  auto note_queue_depth = [&](TimeMs now) {
    if (queue_gauge) queue_gauge->set(static_cast<double>(queued_live));
    if (tracer) {
      tracer->counter_at("cluster.queue_depth",
                         static_cast<double>(queued_live), obs::kVirtualPid,
                         0, now);
    }
  };

  std::vector<double> latencies;
  latencies.reserve(n);
  double busy_area = 0.0;  // integral of busy instances over time
  TimeMs last_event = 0.0;
  Rng run_rng = rng.split();
  std::size_t routed = 0;  // dispatches placed (mirrors NodeResult::routed)

  // Event slab sized for the worst case so the loop never allocates:
  // arrivals are merged in from the sorted vector (below) and never enter
  // the heap, so live events are bounded by two per admitted request
  // (pending + timeout) = 2n slots; the heap additionally holds one stale
  // entry per cancel, and a request cancels at most twice over its
  // lifetime (its timeout disarms once; a firing timeout cancels one
  // pending event), so 4n entries bound the heap.
  ClusterEventQueue events;
  events.reserve(2 * n + 8, 4 * n + 8);
  const TimeMs cold_penalty = cold_start_penalty(params_, cascading_stages);

  auto account = [&](TimeMs now) {
    busy_area += static_cast<double>(busy) * (now - last_event);
    last_event = now;
  };

  // Reclaims warm instances idle past the keep-alive: expired entries are
  // exactly a prefix of the monotone ring.
  auto reap = [&](TimeMs now) {
    while (!warm.empty() && now - warm.front() >= config_.keep_alive_ms) {
      warm.pop_front();
      --live;
    }
  };

  // Marks `id` terminal and disarms its outstanding timeout (in ring
  // mode the ring entry becomes a lazy tombstone).
  auto finalize = [&](std::uint32_t id) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kDone;
    if (r.has_timeout_ev) {
      if (!use_timeout_ring) events.cancel(r.timeout_ev);
      r.has_timeout_ev = false;
    }
  };

  auto end_request_span = [&](std::uint32_t id, TimeMs now) {
    if (tracer) {
      tracer->async_end_at("request", "sim", obs::kVirtualPid, request_track,
                           now, rid(id));
    }
  };

  // Pops the next still-live queued request, skipping timeout tombstones.
  auto take_queued = [&]() -> std::optional<std::uint32_t> {
    while (!queue.empty()) {
      const std::uint32_t id = queue.pop_front();
      if (reqs[id].phase == ReqState::Phase::kQueued) {
        --queued_live;
        return id;
      }
    }
    return std::nullopt;
  };

  // Handles one failed attempt at time `t`: schedules a capped-exponential
  // backoff retry, or drops the request once attempts are exhausted.
  auto fail_attempt = [&](std::uint32_t id, TimeMs t, TimeMs extra_delay) {
    ReqState& r = reqs[id];
    ++result.failed;
    if (r.attempt < retry.max_attempts) {
      ++result.retried;
      if (retry_counter) retry_counter->inc();
      const TimeMs backoff = injector.retry_backoff_ms(retry, r.attempt, id);
      if (tracer) {
        tracer->complete_at("retry.backoff", "fault", obs::kVirtualPid,
                            request_track, t, extra_delay + backoff,
                            {{"attempt", static_cast<double>(r.attempt)},
                             {"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kRetryBackoff, rid(id), r.attempt, t,
                         extra_delay + backoff);
      }
      ++r.attempt;
      r.phase = ReqState::Phase::kBackoff;
      r.pending_ev =
          events.schedule(t + extra_delay + backoff,
                          ClusterEvent{ClusterEvent::Kind::kRetry, id});
    } else {
      ++result.dropped;
      if (recorder) {
        recorder->record(obs::RecKind::kDrop, rid(id), r.attempt, t);
      }
      finalize(id);
      end_request_span(id, t);
    }
  };

  // Places `id` on an instance at `now` (startup = 0 for warm reuse) and
  // schedules its completion — or its mid-execution crash.
  auto begin_service = [&](std::uint32_t id, TimeMs now, TimeMs startup) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kRunning;
    ++busy;
    TimeMs service = backend.run(run_rng).e2e_latency_ms;
    if (injector.straggles(id, r.attempt)) {
      service *= config_.faults.straggler_multiplier;
      count_fault(FaultKind::kStraggler, id, r.attempt, now,
                  config_.faults.straggler_multiplier);
    }
    if (recorder) {
      recorder->record(obs::RecKind::kServiceBegin, rid(id), r.attempt, now,
                       service);
    }
    if (injector.crashes(id, r.attempt)) {
      const TimeMs crash_at =
          now + startup + service * config_.faults.crash_point;
      r.pending_ev = events.schedule(
          crash_at, ClusterEvent{ClusterEvent::Kind::kCrash, id});
      return;
    }
    const TimeMs finish = now + startup + service;
    r.pending_ev = events.schedule(
        finish, ClusterEvent{ClusterEvent::Kind::kCompletion, id});
  };

  auto start_request = [&](std::uint32_t id, TimeMs now) {
    account(now);
    reap(now);
    ++routed;
    ReqState& r = reqs[id];
    if (!warm.empty()) {
      warm.pop_back();  // LIFO keeps hot instances hot
      begin_service(id, now, 0.0);
    } else if (live < max_instances) {
      if (injector.cold_start_fails(id, r.attempt)) {
        // The sandbox dies during boot: the boot time is still paid (it
        // delays the retry) but no instance comes up.
        count_fault(FaultKind::kColdStart, id, r.attempt, now, cold_penalty);
        fail_attempt(id, now, cold_penalty);
        return;
      }
      ++live;
      result.peak_instances = std::max(result.peak_instances, live);
      ++result.cold_starts;
      if (cold_counter) cold_counter->inc();
      if (tracer) {
        tracer->instant_at("cluster.cold_start", "sim", obs::kVirtualPid,
                           request_track, now,
                           {{"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kColdStart, rid(id), r.attempt, now,
                         cold_penalty);
      }
      begin_service(id, now, cold_penalty);
    } else {
      r.phase = ReqState::Phase::kQueued;
      queue.push_back(id);
      ++queued_live;
      result.peak_queue = std::max(result.peak_queue, queued_live);
      if (recorder) {
        recorder->record(obs::RecKind::kQueue, rid(id), r.attempt, now,
                         static_cast<double>(queued_live));
      }
      note_queue_depth(now);
    }
  };

  for (std::size_t i = 0; i < n; ++i) reqs[i].arrival = arrival_times[i];

  // Arrival merge. ArrivalGenerator emits nondecreasing times, so the
  // arrival stream needs no heap: the next event is whichever of (next
  // unfired arrival, heap top) is earlier, keeping the heap at O(live
  // requests) instead of O(total requests). Ties go to the arrival —
  // exactly the reference order, where every arrival was scheduled before
  // the loop began and so outranks any runtime event at the same time.
  // Unsorted times (possible through the public run_prepared) fall back
  // to heaping the arrivals, which is also the reference's order: both
  // schedule them in index order before anything else.
  std::size_t next_arrival = 0;
  if (!sorted_arrivals) {
    for (std::size_t i = 0; i < n; ++i) {
      events.schedule(arrival_times[i],
                      ClusterEvent{ClusterEvent::Kind::kArrival,
                                   static_cast<std::uint32_t>(i)});
    }
    next_arrival = n;
  }
  auto next_event = [&](TimeMs* at, ClusterEvent* ev) -> bool {
    // Drop tombstoned timeouts (finalized requests) off the ring front.
    while (!timeout_ring.empty() &&
           !reqs[timeout_ring.front().id].has_timeout_ev) {
      timeout_ring.pop_front();
    }
    TimeMs heap_at = 0.0;
    std::uint64_t heap_seq = 0;
    const bool have_heap = events.peek(&heap_at, &heap_seq);
    if (next_arrival < n) {
      const TimeMs arrival_at = arrival_times[next_arrival];
      // Arrivals outrank every runtime event at equal times: the
      // reference scheduled all of them before its loop began, so their
      // seqs are globally smallest.
      if ((!have_heap || arrival_at <= heap_at) &&
          (timeout_ring.empty() || arrival_at <= timeout_ring.front().at)) {
        *at = arrival_at;
        *ev = ClusterEvent{ClusterEvent::Kind::kArrival,
                           static_cast<std::uint32_t>(next_arrival)};
        ++next_arrival;
        events.advance_to(arrival_at);
        return true;
      }
    }
    if (!timeout_ring.empty()) {
      const TimeoutEntry& front = timeout_ring.front();
      if (!have_heap || front.at < heap_at ||
          (front.at == heap_at && front.seq < heap_seq)) {
        *at = front.at;
        *ev = ClusterEvent{ClusterEvent::Kind::kTimeout, front.id};
        timeout_ring.pop_front();
        events.advance_to(*at);
        return true;
      }
    }
    return events.pop(at, ev);
  };

  TimeMs at = 0.0;
  ClusterEvent ev;
  while (next_event(&at, &ev)) {
    const std::uint32_t id = ev.id;
    switch (ev.kind) {
      case ClusterEvent::Kind::kArrival: {
        if (tracer) {
          tracer->async_begin_at("request", "sim", obs::kVirtualPid,
                                 request_track, at, rid(id));
        }
        if (recorder) {
          recorder->record(obs::RecKind::kAdmit, rid(id), 1, at);
        }
        if (has_timeout) {
          reqs[id].has_timeout_ev = true;
          if (use_timeout_ring) {
            timeout_ring.push_back(
                TimeoutEntry{at + retry.timeout_ms, events.mint_seq(), id});
          } else {
            reqs[id].timeout_ev = events.schedule(
                at + retry.timeout_ms,
                ClusterEvent{ClusterEvent::Kind::kTimeout, id});
          }
        }
        start_request(id, at);
        break;
      }
      case ClusterEvent::Kind::kCompletion: {
        account(at);
        --busy;
        const TimeMs latency = at - reqs[id].arrival;
        latencies.push_back(latency);
        ++result.completed;
        if (recorder) {
          recorder->record(obs::RecKind::kComplete, rid(id), reqs[id].attempt,
                           at, latency);
        }
        finalize(id);
        if (latency_hist) latency_hist->observe(latency);
        end_request_span(id, at);
        if (const auto qid = take_queued()) {
          note_queue_depth(at);
          // The finishing instance is handed to the queued request
          // directly: it never visits the warm pool, so reap() cannot
          // reclaim it out from under the handoff (the keep_alive_ms == 0
          // cold-start bug).
          reap(at);
          begin_service(*qid, at, 0.0);
        } else {
          warm.push_back(at);
        }
        break;
      }
      case ClusterEvent::Kind::kCrash: {
        account(at);
        --busy;
        --live;  // the crash takes the sandbox with it
        count_fault(FaultKind::kCrash, id, reqs[id].attempt, at);
        fail_attempt(id, at, 0.0);
        // The crash freed a slot: a queued request can now cold-start.
        if (const auto qid = take_queued()) {
          note_queue_depth(at);
          start_request(*qid, at);
        }
        break;
      }
      case ClusterEvent::Kind::kRetry: {
        start_request(id, at);
        break;
      }
      case ClusterEvent::Kind::kTimeout: {
        // Abandons `id` at its deadline, wherever it is.
        ReqState& r = reqs[id];
        r.has_timeout_ev = false;
        ++result.timed_out;
        if (timeout_counter) timeout_counter->inc();
        if (tracer) {
          tracer->instant_at("request.timeout", "fault", obs::kVirtualPid,
                             request_track, at,
                             {{"request", static_cast<double>(rid(id))}});
        }
        if (recorder) {
          recorder->record(obs::RecKind::kTimeout, rid(id), r.attempt, at);
        }
        switch (r.phase) {
          case ReqState::Phase::kQueued: {
            // Lazy tombstone: the ring entry stays behind and take_queued
            // skips it; only the live counter moves.
            --queued_live;
            note_queue_depth(at);
            break;
          }
          case ReqState::Phase::kRunning: {
            // The platform aborts the handler but keeps the sandbox.
            events.cancel(r.pending_ev);
            account(at);
            --busy;
            if (const auto qid = take_queued()) {
              note_queue_depth(at);
              reap(at);
              begin_service(*qid, at, 0.0);
            } else {
              warm.push_back(at);
            }
            break;
          }
          case ReqState::Phase::kBackoff:
            events.cancel(r.pending_ev);
            break;
          default:
            break;
        }
        r.phase = ReqState::Phase::kDone;
        end_request_span(id, at);
        break;
      }
    }
  }

  // Single pool-wide node entry so a pooled result compares equal
  // field-for-field to a one-node sharded run.
  result.node_results.resize(1);
  result.node_results[0].routed = routed;
  result.node_results[0].completed = result.completed;
  result.node_results[0].cold_starts = result.cold_starts;
  result.node_results[0].peak_queue = result.peak_queue;

  if (!latencies.empty()) {
    result.mean_ms = mean_of(latencies);
    const Cdf cdf(latencies);  // one sort for all three quantiles
    result.p50_ms = cdf.quantile(0.50);
    result.p95_ms = cdf.quantile(0.95);
    result.p99_ms = cdf.quantile(0.99);
  }
  // Streaming accumulator in completion order (deterministic: virtual
  // time), merged across seeds by run_batch.
  for (double latency : latencies) result.latency_stats.add(latency);
  const TimeMs span = std::max(last_event, config_.horizon_ms);
  result.achieved_rps =
      span > 0.0 ? static_cast<double>(result.completed) / (span / 1000.0)
                 : 0.0;
  result.mean_busy_instances = span > 0.0 ? busy_area / span : 0.0;
  if (metrics) {
    metrics->gauge("cluster.peak_instances")
        .set(static_cast<double>(result.peak_instances));
  }
  CHIRON_LOG(kDebug) << "cluster sim: " << result.completed << "/"
                     << result.offered << " requests, "
                     << result.cold_starts << " cold starts, "
                     << result.failed << " faults, " << result.retried
                     << " retries, " << result.timed_out << " timeouts, "
                     << result.dropped << " drops, peak queue "
                     << result.peak_queue;
  return result;
}

// ---------------------------------------------------------------------------
// Retired closure-based loop, kept verbatim as the parity oracle.
// ---------------------------------------------------------------------------
ClusterResult ClusterSimulator::run_prepared_reference(
    const Backend& backend, std::size_t cascading_stages,
    const std::vector<TimeMs>& arrival_times, std::uint64_t id_base) const {
  const std::size_t max_instances =
      cluster_capacity(backend.resources(), params_, config_);

  // Reconstruct the seeded stream exactly as run() threads it: the first
  // split fed the arrival generator, the second (below) drives service
  // times.
  Rng rng(config_.seed);
  (void)rng.split();

  ClusterResult result;
  result.offered = arrival_times.size();

  // Request causality: every request of this run carries a process-unique
  // trace id from the pre-minted block; recorder and tracer events are
  // keyed by it. Fault decisions keep hashing the arrival *index*, so the
  // minted ids never change a seeded run's outcome.
  result.request_id_base = id_base;

  const FaultInjector injector(config_.faults);
  const RetryPolicy& retry = config_.retry;
  const bool has_timeout = retry.timeout_ms > 0.0;

  // Observability sinks: all cluster events carry *simulated* timestamps.
  obs::Tracer* tracer =
      config_.tracer && config_.tracer->enabled() ? config_.tracer : nullptr;
  obs::MetricsRegistry* metrics = config_.metrics;
  const int request_track =
      tracer ? tracer->new_track("cluster.requests", obs::kVirtualPid) : 0;
  obs::Counter* cold_counter =
      metrics ? &metrics->counter("cluster.cold_starts") : nullptr;
  obs::Gauge* queue_gauge =
      metrics ? &metrics->gauge("cluster.queue_depth") : nullptr;
  obs::Histogram* latency_hist =
      metrics ? &metrics->histogram("cluster.e2e_latency_ms") : nullptr;
  obs::Counter* fault_counter =
      metrics ? &metrics->counter("chiron.fault.injected") : nullptr;
  obs::Counter* retry_counter =
      metrics ? &metrics->counter("chiron.retry.attempts") : nullptr;
  obs::Counter* timeout_counter =
      metrics ? &metrics->counter("chiron.request.timeout") : nullptr;
  obs::FlightRecorder* recorder =
      config_.recorder && config_.recorder->enabled() ? config_.recorder
                                                      : nullptr;

  // The process-unique trace id of arrival `id`.
  auto rid = [id_base](std::uint64_t id) { return id_base + id; };

  auto count_fault = [&](FaultKind kind, std::uint64_t id,
                         std::uint32_t attempt, TimeMs now,
                         double value = 0.0) {
    if (fault_counter) fault_counter->inc();
    if (metrics) {
      metrics
          ->counter(std::string("chiron.fault.injected.") + to_string(kind))
          .inc();
    }
    if (tracer) {
      tracer->instant_at(std::string("fault.") + to_string(kind), "fault",
                         obs::kVirtualPid, request_track, now,
                         {{"request", static_cast<double>(rid(id))},
                          {"attempt", static_cast<double>(attempt)}});
    }
    if (recorder) {
      recorder->record(fault_rec_kind(kind), rid(id), attempt, now, value);
    }
  };

  // Instance states: warm holds the idle-since time of each resident but
  // idle instance.
  std::vector<TimeMs> warm;
  std::size_t live = 0;             // busy + warm instances
  std::size_t busy = 0;

  // Per-request recovery state. A request is terminal (kDone) exactly once:
  // completed, timed out, or dropped after max_attempts.
  struct ReqState {
    TimeMs arrival = 0.0;
    std::uint32_t attempt = 1;
    enum class Phase : std::uint8_t {
      kWaiting,   ///< arrival not yet processed
      kQueued,    ///< waiting for capacity
      kRunning,   ///< on an instance (pending_ev = completion or crash)
      kBackoff,   ///< waiting to re-attempt (pending_ev = retry)
      kDone,
    } phase = Phase::kWaiting;
    EventQueue::Handle pending_ev = 0;
    EventQueue::Handle timeout_ev = 0;
    bool has_timeout_ev = false;
  };
  std::vector<ReqState> reqs(arrival_times.size());

  // Waiting request ids; timed-out entries are erased eagerly.
  std::deque<std::uint64_t> queue;

  auto note_queue_depth = [&](TimeMs now) {
    if (queue_gauge) queue_gauge->set(static_cast<double>(queue.size()));
    if (tracer) {
      tracer->counter_at("cluster.queue_depth",
                         static_cast<double>(queue.size()), obs::kVirtualPid,
                         0, now);
    }
  };

  std::vector<double> latencies;
  double busy_area = 0.0;  // integral of busy instances over time
  TimeMs last_event = 0.0;
  Rng run_rng = rng.split();
  std::size_t routed = 0;  // dispatches placed (mirrors NodeResult::routed)

  EventQueue events;
  const TimeMs cold_penalty = cold_start_penalty(params_, cascading_stages);

  auto account = [&](TimeMs now) {
    busy_area += static_cast<double>(busy) * (now - last_event);
    last_event = now;
  };

  // Reclaims warm instances idle past the keep-alive.
  auto reap = [&](TimeMs now) {
    auto it = warm.begin();
    while (it != warm.end()) {
      if (now - *it >= config_.keep_alive_ms) {
        it = warm.erase(it);
        --live;
      } else {
        ++it;
      }
    }
  };

  // Marks `id` terminal and disarms its outstanding timeout.
  auto finalize = [&](std::uint64_t id) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kDone;
    if (r.has_timeout_ev) {
      events.cancel(r.timeout_ev);
      r.has_timeout_ev = false;
    }
  };

  auto end_request_span = [&](std::uint64_t id, TimeMs now) {
    if (tracer) {
      tracer->async_end_at("request", "sim", obs::kVirtualPid, request_track,
                           now, rid(id));
    }
  };

  // Pops the next still-live queued request, skipping tombstones left by
  // timeouts (defensive: timeouts erase eagerly, so skips are rare).
  auto take_queued = [&]() -> std::optional<std::uint64_t> {
    while (!queue.empty()) {
      const std::uint64_t id = queue.front();
      queue.pop_front();
      if (reqs[id].phase == ReqState::Phase::kQueued) return id;
    }
    return std::nullopt;
  };

  // Forward declarations: the recovery paths are mutually recursive
  // (completion -> queued handoff -> service; crash -> retry -> start).
  std::function<void(std::uint64_t, TimeMs)> start_request;
  std::function<void(std::uint64_t, TimeMs, TimeMs)> begin_service;

  // Handles one failed attempt at time `t`: schedules a capped-exponential
  // backoff retry, or drops the request once attempts are exhausted.
  auto fail_attempt = [&](std::uint64_t id, TimeMs t, TimeMs extra_delay) {
    ReqState& r = reqs[id];
    ++result.failed;
    if (r.attempt < retry.max_attempts) {
      ++result.retried;
      if (retry_counter) retry_counter->inc();
      const TimeMs backoff = injector.retry_backoff_ms(retry, r.attempt, id);
      if (tracer) {
        tracer->complete_at("retry.backoff", "fault", obs::kVirtualPid,
                            request_track, t, extra_delay + backoff,
                            {{"attempt", static_cast<double>(r.attempt)},
                             {"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kRetryBackoff, rid(id), r.attempt, t,
                         extra_delay + backoff);
      }
      ++r.attempt;
      r.phase = ReqState::Phase::kBackoff;
      r.pending_ev = events.schedule(
          t + extra_delay + backoff,
          [&, id] { start_request(id, events.now()); });
    } else {
      ++result.dropped;
      if (recorder) {
        recorder->record(obs::RecKind::kDrop, rid(id), r.attempt, t);
      }
      finalize(id);
      end_request_span(id, t);
    }
  };

  // Places `id` on an instance at `now` (startup = 0 for warm reuse) and
  // schedules its completion — or its mid-execution crash.
  begin_service = [&](std::uint64_t id, TimeMs now, TimeMs startup) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kRunning;
    ++busy;
    TimeMs service = backend.run(run_rng).e2e_latency_ms;
    if (injector.straggles(id, r.attempt)) {
      service *= config_.faults.straggler_multiplier;
      count_fault(FaultKind::kStraggler, id, r.attempt, now,
                  config_.faults.straggler_multiplier);
    }
    if (recorder) {
      recorder->record(obs::RecKind::kServiceBegin, rid(id), r.attempt, now,
                       service);
    }
    if (injector.crashes(id, r.attempt)) {
      const TimeMs crash_at =
          now + startup + service * config_.faults.crash_point;
      r.pending_ev = events.schedule(crash_at, [&, id, crash_at] {
        account(crash_at);
        --busy;
        --live;  // the crash takes the sandbox with it
        count_fault(FaultKind::kCrash, id, reqs[id].attempt, crash_at);
        fail_attempt(id, crash_at, 0.0);
        // The crash freed a slot: a queued request can now cold-start.
        if (const auto qid = take_queued()) {
          note_queue_depth(crash_at);
          start_request(*qid, crash_at);
        }
      });
      return;
    }
    const TimeMs finish = now + startup + service;
    r.pending_ev = events.schedule(finish, [&, id, finish] {
      account(finish);
      --busy;
      const TimeMs latency = finish - reqs[id].arrival;
      latencies.push_back(latency);
      ++result.completed;
      if (recorder) {
        recorder->record(obs::RecKind::kComplete, rid(id),
                         reqs[id].attempt, finish, latency);
      }
      finalize(id);
      if (latency_hist) latency_hist->observe(latency);
      end_request_span(id, finish);
      if (const auto qid = take_queued()) {
        note_queue_depth(finish);
        // The finishing instance is handed to the queued request directly:
        // it never visits the warm pool, so reap() cannot reclaim it out
        // from under the handoff (the keep_alive_ms == 0 cold-start bug).
        reap(finish);
        begin_service(*qid, finish, 0.0);
      } else {
        warm.push_back(finish);
      }
    });
  };

  start_request = [&](std::uint64_t id, TimeMs now) {
    account(now);
    reap(now);
    ++routed;
    ReqState& r = reqs[id];
    if (!warm.empty()) {
      warm.pop_back();  // LIFO keeps hot instances hot
      begin_service(id, now, 0.0);
    } else if (live < max_instances) {
      if (injector.cold_start_fails(id, r.attempt)) {
        // The sandbox dies during boot: the boot time is still paid (it
        // delays the retry) but no instance comes up.
        count_fault(FaultKind::kColdStart, id, r.attempt, now, cold_penalty);
        fail_attempt(id, now, cold_penalty);
        return;
      }
      ++live;
      result.peak_instances = std::max(result.peak_instances, live);
      ++result.cold_starts;
      if (cold_counter) cold_counter->inc();
      if (tracer) {
        tracer->instant_at("cluster.cold_start", "sim", obs::kVirtualPid,
                           request_track, now,
                           {{"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kColdStart, rid(id), r.attempt, now,
                         cold_penalty);
      }
      begin_service(id, now, cold_penalty);
    } else {
      r.phase = ReqState::Phase::kQueued;
      queue.push_back(id);
      result.peak_queue = std::max(result.peak_queue, queue.size());
      if (recorder) {
        recorder->record(obs::RecKind::kQueue, rid(id), r.attempt, now,
                         static_cast<double>(queue.size()));
      }
      note_queue_depth(now);
    }
  };

  // Abandons `id` at its deadline, wherever it is.
  auto on_timeout = [&](std::uint64_t id, TimeMs deadline) {
    ReqState& r = reqs[id];
    r.has_timeout_ev = false;
    ++result.timed_out;
    if (timeout_counter) timeout_counter->inc();
    if (tracer) {
      tracer->instant_at("request.timeout", "fault", obs::kVirtualPid,
                         request_track, deadline,
                         {{"request", static_cast<double>(rid(id))}});
    }
    if (recorder) {
      recorder->record(obs::RecKind::kTimeout, rid(id), r.attempt, deadline);
    }
    switch (r.phase) {
      case ReqState::Phase::kQueued: {
        const auto it = std::find(queue.begin(), queue.end(), id);
        if (it != queue.end()) queue.erase(it);
        note_queue_depth(deadline);
        break;
      }
      case ReqState::Phase::kRunning: {
        // The platform aborts the handler but keeps the sandbox.
        events.cancel(r.pending_ev);
        account(deadline);
        --busy;
        if (const auto qid = take_queued()) {
          note_queue_depth(deadline);
          reap(deadline);
          begin_service(*qid, deadline, 0.0);
        } else {
          warm.push_back(deadline);
        }
        break;
      }
      case ReqState::Phase::kBackoff:
        events.cancel(r.pending_ev);
        break;
      default:
        break;
    }
    r.phase = ReqState::Phase::kDone;
    end_request_span(id, deadline);
  };

  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    const TimeMs at = arrival_times[i];
    const std::uint64_t id = i;
    reqs[id].arrival = at;
    events.schedule(at, [&, at, id] {
      if (tracer) {
        tracer->async_begin_at("request", "sim", obs::kVirtualPid,
                               request_track, at, rid(id));
      }
      if (recorder) {
        recorder->record(obs::RecKind::kAdmit, rid(id), 1, at);
      }
      if (has_timeout) {
        reqs[id].has_timeout_ev = true;
        reqs[id].timeout_ev =
            events.schedule(at + retry.timeout_ms, [&, id] {
              on_timeout(id, events.now());
            });
      }
      start_request(id, at);
    });
  }
  events.run();

  // Single pool-wide node entry so the reference result compares equal
  // field-for-field to the pooled typed loop.
  result.node_results.resize(1);
  result.node_results[0].routed = routed;
  result.node_results[0].completed = result.completed;
  result.node_results[0].cold_starts = result.cold_starts;
  result.node_results[0].peak_queue = result.peak_queue;

  if (!latencies.empty()) {
    result.mean_ms = mean_of(latencies);
    const Cdf cdf(latencies);  // one sort for all three quantiles
    result.p50_ms = cdf.quantile(0.50);
    result.p95_ms = cdf.quantile(0.95);
    result.p99_ms = cdf.quantile(0.99);
  }
  // Streaming accumulator in completion order (deterministic: virtual
  // time), merged across seeds by run_batch.
  for (double latency : latencies) result.latency_stats.add(latency);
  const TimeMs span = std::max(last_event, config_.horizon_ms);
  result.achieved_rps =
      span > 0.0 ? static_cast<double>(result.completed) / (span / 1000.0)
                 : 0.0;
  result.mean_busy_instances = span > 0.0 ? busy_area / span : 0.0;
  if (metrics) {
    metrics->gauge("cluster.peak_instances")
        .set(static_cast<double>(result.peak_instances));
  }
  CHIRON_LOG(kDebug) << "cluster sim: " << result.completed << "/"
                     << result.offered << " requests, "
                     << result.cold_starts << " cold starts, "
                     << result.failed << " faults, " << result.retried
                     << " retries, " << result.timed_out << " timeouts, "
                     << result.dropped << " drops, peak queue "
                     << result.peak_queue;
  return result;
}

std::vector<ScenarioOutcome> ClusterSimulator::run_batch(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<std::uint64_t>& seeds, const RuntimeParams& params,
    ThreadPool* pool) {
  // Per-(spec, seed) job, prepared sequentially in spec-major order so the
  // arrival processes and the global request-id blocks are minted in a
  // deterministic sequence regardless of how the runs are later scheduled.
  struct Job {
    ClusterConfig config;
    const Backend* backend = nullptr;
    std::size_t stages = 1;
    std::vector<TimeMs> arrivals;
    std::uint64_t id_base = 0;
  };
  std::vector<Job> jobs;
  jobs.reserve(specs.size() * std::max<std::size_t>(1, seeds.size()));
  for (const ScenarioSpec& spec : specs) {
    const std::vector<std::uint64_t> spec_seeds =
        seeds.empty() ? std::vector<std::uint64_t>{spec.config.seed} : seeds;
    for (const std::uint64_t seed : spec_seeds) {
      Job job;
      job.config = spec.config;
      job.config.seed = seed;
      job.backend = spec.backend;
      job.stages = spec.cascading_stages;
      Rng rng(seed);
      ArrivalGenerator arrivals(job.config.arrivals, job.config.offered_rps,
                                rng.split());
      job.arrivals = arrivals.generate(job.config.horizon_ms);
      job.id_base = obs::mint_request_ids(job.arrivals.size());
      jobs.push_back(std::move(job));
    }
  }

  // Independent deterministic runs: each gets its own simulator (and with
  // it event queue, FaultInjector, Rng streams, and latency accumulator).
  // map() returns results in job order whatever the worker count.
  std::vector<ClusterResult> results =
      ThreadPool::map(pool, jobs.size(), [&](std::size_t j) {
        const Job& job = jobs[j];
        const ClusterSimulator sim(job.config, params);
        return sim.run_prepared(*job.backend, job.stages, job.arrivals,
                                job.id_base);
      });

  // Fold per-seed results into per-scenario outcomes.
  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(specs.size());
  std::size_t j = 0;
  for (const ScenarioSpec& spec : specs) {
    ScenarioOutcome outcome;
    outcome.name = spec.name;
    outcome.seeds =
        seeds.empty() ? std::vector<std::uint64_t>{spec.config.seed} : seeds;
    for (std::size_t k = 0; k < outcome.seeds.size(); ++k, ++j) {
      ClusterResult& r = results[j];
      outcome.latency_ms.merge(r.latency_stats);
      outcome.achieved_rps.add(r.achieved_rps);
      outcome.offered += r.offered;
      outcome.completed += r.completed;
      outcome.cold_starts += r.cold_starts;
      outcome.timed_out += r.timed_out;
      outcome.dropped += r.dropped;
      outcome.runs.push_back(std::move(r));
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace chiron
