#include "platform/cluster.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <vector>

#include "common/log.h"
#include "metrics/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace chiron {

TimeMs cold_start_penalty(const RuntimeParams& params,
                          std::size_t cascading_stages) {
  return params.sandbox_cold_start_ms *
         static_cast<TimeMs>(std::max<std::size_t>(1, cascading_stages));
}

ClusterSimulator::ClusterSimulator(ClusterConfig config, RuntimeParams params)
    : config_(config), params_(params) {}

ClusterResult ClusterSimulator::run(const Backend& backend,
                                    std::size_t cascading_stages) const {
  const ResourceUsage usage = backend.resources();

  // Instances the cluster can host; a deployment larger than one node
  // spans nodes, so capacity is computed cluster-wide.
  const double total_cpus =
      static_cast<double>(params_.node_cpus * config_.nodes);
  const double total_mem = params_.node_memory_mb *
                           static_cast<double>(config_.nodes);
  std::size_t max_instances = 0;
  if (usage.cpus > 0.0 && usage.memory_mb > 0.0) {
    max_instances = static_cast<std::size_t>(
        std::min(total_cpus / usage.cpus, total_mem / usage.memory_mb));
  }
  max_instances = std::max<std::size_t>(1, max_instances);

  Rng rng(config_.seed);
  ArrivalGenerator arrivals(config_.arrivals, config_.offered_rps,
                            rng.split());
  const std::vector<TimeMs> arrival_times =
      arrivals.generate(config_.horizon_ms);

  ClusterResult result;
  result.offered = arrival_times.size();

  // Observability sinks: all cluster events carry *simulated* timestamps.
  obs::Tracer* tracer =
      config_.tracer && config_.tracer->enabled() ? config_.tracer : nullptr;
  obs::MetricsRegistry* metrics = config_.metrics;
  const int request_track =
      tracer ? tracer->new_track("cluster.requests", obs::kVirtualPid) : 0;
  obs::Counter* cold_counter =
      metrics ? &metrics->counter("cluster.cold_starts") : nullptr;
  obs::Gauge* queue_gauge =
      metrics ? &metrics->gauge("cluster.queue_depth") : nullptr;
  obs::Histogram* latency_hist =
      metrics ? &metrics->histogram("cluster.e2e_latency_ms") : nullptr;
  std::uint64_t next_request_id = 0;

  // Instance states: warm holds the idle-since time of each resident but
  // idle instance.
  std::vector<TimeMs> warm;
  std::size_t live = 0;             // busy + warm instances
  std::size_t busy = 0;
  // Waiting requests: {arrival time, request id}.
  std::deque<std::pair<TimeMs, std::uint64_t>> queue;

  auto note_queue_depth = [&](TimeMs now) {
    if (queue_gauge) queue_gauge->set(static_cast<double>(queue.size()));
    if (tracer) {
      tracer->counter_at("cluster.queue_depth",
                         static_cast<double>(queue.size()), obs::kVirtualPid,
                         0, now);
    }
  };

  std::vector<double> latencies;
  double busy_area = 0.0;  // integral of busy instances over time
  TimeMs last_event = 0.0;
  Rng run_rng = rng.split();

  EventQueue events;
  const TimeMs cold_penalty = cold_start_penalty(params_, cascading_stages);

  auto account = [&](TimeMs now) {
    busy_area += static_cast<double>(busy) * (now - last_event);
    last_event = now;
  };

  // Reclaims warm instances idle past the keep-alive.
  auto reap = [&](TimeMs now) {
    auto it = warm.begin();
    while (it != warm.end()) {
      if (now - *it >= config_.keep_alive_ms) {
        it = warm.erase(it);
        --live;
      } else {
        ++it;
      }
    }
  };

  // Forward declaration trick: start_request schedules completion, which
  // may start queued requests.
  std::function<void(TimeMs, std::uint64_t, TimeMs)> start_request =
      [&](TimeMs arrival, std::uint64_t id, TimeMs now) {
        account(now);
        reap(now);
        TimeMs startup = 0.0;
        if (!warm.empty()) {
          warm.pop_back();  // LIFO keeps hot instances hot
        } else if (live < max_instances) {
          ++live;
          result.peak_instances = std::max(result.peak_instances, live);
          ++result.cold_starts;
          startup = cold_penalty;
          if (cold_counter) cold_counter->inc();
          if (tracer) {
            tracer->instant_at("cluster.cold_start", "sim", obs::kVirtualPid,
                               request_track, now);
          }
        } else {
          queue.emplace_back(arrival, id);
          result.peak_queue = std::max(result.peak_queue, queue.size());
          note_queue_depth(now);
          return;
        }
        ++busy;
        const TimeMs service = backend.run(run_rng).e2e_latency_ms;
        const TimeMs finish = now + startup + service;
        events.schedule(finish, [&, arrival, id, finish] {
          account(finish);
          --busy;
          latencies.push_back(finish - arrival);
          ++result.completed;
          if (latency_hist) latency_hist->observe(finish - arrival);
          if (tracer) {
            tracer->async_end_at("request", "sim", obs::kVirtualPid,
                                 request_track, finish, id);
          }
          if (!queue.empty()) {
            const auto [queued_arrival, queued_id] = queue.front();
            queue.pop_front();
            note_queue_depth(finish);
            // The finishing instance is immediately reused (warm).
            warm.push_back(finish);
            start_request(queued_arrival, queued_id, finish);
          } else {
            warm.push_back(finish);
          }
        });
      };

  for (TimeMs at : arrival_times) {
    const std::uint64_t id = next_request_id++;
    events.schedule(at, [&, at, id] {
      if (tracer) {
        tracer->async_begin_at("request", "sim", obs::kVirtualPid,
                               request_track, at, id);
      }
      start_request(at, id, at);
    });
  }
  events.run();

  if (!latencies.empty()) {
    result.mean_ms = mean_of(latencies);
    result.p50_ms = percentile(latencies, 50.0);
    result.p95_ms = percentile(latencies, 95.0);
    result.p99_ms = percentile(latencies, 99.0);
  }
  const TimeMs span = std::max(last_event, config_.horizon_ms);
  result.achieved_rps =
      span > 0.0 ? static_cast<double>(result.completed) / (span / 1000.0)
                 : 0.0;
  result.mean_busy_instances = span > 0.0 ? busy_area / span : 0.0;
  if (metrics) {
    metrics->gauge("cluster.peak_instances")
        .set(static_cast<double>(result.peak_instances));
  }
  CHIRON_LOG(kDebug) << "cluster sim: " << result.completed << "/"
                     << result.offered << " requests, "
                     << result.cold_starts << " cold starts, peak queue "
                     << result.peak_queue;
  return result;
}

}  // namespace chiron
