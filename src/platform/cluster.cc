#include "platform/cluster.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <vector>

#include "metrics/stats.h"
#include "sim/event_queue.h"

namespace chiron {

TimeMs cold_start_penalty(const RuntimeParams& params,
                          std::size_t cascading_stages) {
  return params.sandbox_cold_start_ms *
         static_cast<TimeMs>(std::max<std::size_t>(1, cascading_stages));
}

ClusterSimulator::ClusterSimulator(ClusterConfig config, RuntimeParams params)
    : config_(config), params_(params) {}

ClusterResult ClusterSimulator::run(const Backend& backend,
                                    std::size_t cascading_stages) const {
  const ResourceUsage usage = backend.resources();

  // Instances the cluster can host; a deployment larger than one node
  // spans nodes, so capacity is computed cluster-wide.
  const double total_cpus =
      static_cast<double>(params_.node_cpus * config_.nodes);
  const double total_mem = params_.node_memory_mb *
                           static_cast<double>(config_.nodes);
  std::size_t max_instances = 0;
  if (usage.cpus > 0.0 && usage.memory_mb > 0.0) {
    max_instances = static_cast<std::size_t>(
        std::min(total_cpus / usage.cpus, total_mem / usage.memory_mb));
  }
  max_instances = std::max<std::size_t>(1, max_instances);

  Rng rng(config_.seed);
  ArrivalGenerator arrivals(config_.arrivals, config_.offered_rps,
                            rng.split());
  const std::vector<TimeMs> arrival_times =
      arrivals.generate(config_.horizon_ms);

  ClusterResult result;
  result.offered = arrival_times.size();

  // Instance states: warm holds the idle-since time of each resident but
  // idle instance.
  std::vector<TimeMs> warm;
  std::size_t live = 0;             // busy + warm instances
  std::size_t busy = 0;
  std::deque<TimeMs> queue;         // arrival times of waiting requests

  std::vector<double> latencies;
  double busy_area = 0.0;  // integral of busy instances over time
  TimeMs last_event = 0.0;
  Rng run_rng = rng.split();

  EventQueue events;
  const TimeMs cold_penalty = cold_start_penalty(params_, cascading_stages);

  auto account = [&](TimeMs now) {
    busy_area += static_cast<double>(busy) * (now - last_event);
    last_event = now;
  };

  // Reclaims warm instances idle past the keep-alive.
  auto reap = [&](TimeMs now) {
    auto it = warm.begin();
    while (it != warm.end()) {
      if (now - *it >= config_.keep_alive_ms) {
        it = warm.erase(it);
        --live;
      } else {
        ++it;
      }
    }
  };

  // Forward declaration trick: start_request schedules completion, which
  // may start queued requests.
  std::function<void(TimeMs, TimeMs)> start_request =
      [&](TimeMs arrival, TimeMs now) {
        account(now);
        reap(now);
        TimeMs startup = 0.0;
        if (!warm.empty()) {
          warm.pop_back();  // LIFO keeps hot instances hot
        } else if (live < max_instances) {
          ++live;
          result.peak_instances = std::max(result.peak_instances, live);
          ++result.cold_starts;
          startup = cold_penalty;
        } else {
          queue.push_back(arrival);
          result.peak_queue = std::max(result.peak_queue, queue.size());
          return;
        }
        ++busy;
        const TimeMs service = backend.run(run_rng).e2e_latency_ms;
        const TimeMs finish = now + startup + service;
        events.schedule(finish, [&, arrival, finish] {
          account(finish);
          --busy;
          latencies.push_back(finish - arrival);
          ++result.completed;
          if (!queue.empty()) {
            const TimeMs queued_arrival = queue.front();
            queue.pop_front();
            // The finishing instance is immediately reused (warm).
            warm.push_back(finish);
            start_request(queued_arrival, finish);
          } else {
            warm.push_back(finish);
          }
        });
      };

  for (TimeMs at : arrival_times) {
    events.schedule(at, [&, at] { start_request(at, at); });
  }
  events.run();

  if (!latencies.empty()) {
    result.mean_ms = mean_of(latencies);
    result.p50_ms = percentile(latencies, 50.0);
    result.p95_ms = percentile(latencies, 95.0);
    result.p99_ms = percentile(latencies, 99.0);
  }
  const TimeMs span = std::max(last_event, config_.horizon_ms);
  result.achieved_rps =
      span > 0.0 ? static_cast<double>(result.completed) / (span / 1000.0)
                 : 0.0;
  result.mean_busy_instances = span > 0.0 ? busy_area / span : 0.0;
  return result;
}

}  // namespace chiron
