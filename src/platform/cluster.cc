#include "platform/cluster.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/log.h"
#include "common/thread_pool.h"
#include "metrics/stats.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace chiron {
namespace {

/// Recorder event kind for an injected fault.
obs::RecKind fault_rec_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kColdStart: return obs::RecKind::kFaultColdStart;
    case FaultKind::kCrash: return obs::RecKind::kFaultCrash;
    case FaultKind::kStraggler: return obs::RecKind::kFaultStraggler;
    default: return obs::RecKind::kFaultTransfer;
  }
}

}  // namespace

TimeMs cold_start_penalty(const RuntimeParams& params,
                          std::size_t cascading_stages) {
  return params.sandbox_cold_start_ms *
         static_cast<TimeMs>(std::max<std::size_t>(1, cascading_stages));
}

ClusterSimulator::ClusterSimulator(ClusterConfig config, RuntimeParams params)
    : config_(config), params_(params) {}

ClusterResult ClusterSimulator::run(const Backend& backend,
                                    std::size_t cascading_stages) const {
  // Generate the arrival process and mint the request-id block up front,
  // then hand off to the shared core. run_batch() does the same per
  // (spec, seed) job *sequentially* before fanning out, which is what
  // keeps batch results independent of the pool size.
  Rng rng(config_.seed);
  ArrivalGenerator arrivals(config_.arrivals, config_.offered_rps,
                            rng.split());
  const std::vector<TimeMs> arrival_times =
      arrivals.generate(config_.horizon_ms);
  return run_impl(backend, cascading_stages, arrival_times,
                  obs::mint_request_ids(arrival_times.size()));
}

ClusterResult ClusterSimulator::run_impl(
    const Backend& backend, std::size_t cascading_stages,
    const std::vector<TimeMs>& arrival_times, std::uint64_t id_base) const {
  const ResourceUsage usage = backend.resources();

  // Instances the cluster can host; a deployment larger than one node
  // spans nodes, so capacity is computed cluster-wide. Each resource
  // dimension bounds capacity independently: a memory-only (or cpu-only)
  // deployment is limited by its nonzero dimension alone.
  const double total_cpus =
      static_cast<double>(params_.node_cpus * config_.nodes);
  const double total_mem = params_.node_memory_mb *
                           static_cast<double>(config_.nodes);
  double capacity = std::numeric_limits<double>::infinity();
  if (usage.cpus > 0.0) capacity = std::min(capacity, total_cpus / usage.cpus);
  if (usage.memory_mb > 0.0) {
    capacity = std::min(capacity, total_mem / usage.memory_mb);
  }
  std::size_t max_instances =
      std::isfinite(capacity) ? static_cast<std::size_t>(capacity) : 0;
  max_instances = std::max<std::size_t>(1, max_instances);

  // Reconstruct the seeded stream exactly as run() threads it: the first
  // split fed the arrival generator, the second (below) drives service
  // times.
  Rng rng(config_.seed);
  (void)rng.split();

  ClusterResult result;
  result.offered = arrival_times.size();

  // Request causality: every request of this run carries a process-unique
  // trace id from the pre-minted block; recorder and tracer events are
  // keyed by it. Fault decisions keep hashing the arrival *index*, so the
  // minted ids never change a seeded run's outcome.
  result.request_id_base = id_base;

  const FaultInjector injector(config_.faults);
  const RetryPolicy& retry = config_.retry;
  const bool has_timeout = retry.timeout_ms > 0.0;

  // Observability sinks: all cluster events carry *simulated* timestamps.
  obs::Tracer* tracer =
      config_.tracer && config_.tracer->enabled() ? config_.tracer : nullptr;
  obs::MetricsRegistry* metrics = config_.metrics;
  const int request_track =
      tracer ? tracer->new_track("cluster.requests", obs::kVirtualPid) : 0;
  obs::Counter* cold_counter =
      metrics ? &metrics->counter("cluster.cold_starts") : nullptr;
  obs::Gauge* queue_gauge =
      metrics ? &metrics->gauge("cluster.queue_depth") : nullptr;
  obs::Histogram* latency_hist =
      metrics ? &metrics->histogram("cluster.e2e_latency_ms") : nullptr;
  obs::Counter* fault_counter =
      metrics ? &metrics->counter("chiron.fault.injected") : nullptr;
  obs::Counter* retry_counter =
      metrics ? &metrics->counter("chiron.retry.attempts") : nullptr;
  obs::Counter* timeout_counter =
      metrics ? &metrics->counter("chiron.request.timeout") : nullptr;
  obs::FlightRecorder* recorder =
      config_.recorder && config_.recorder->enabled() ? config_.recorder
                                                      : nullptr;

  // The process-unique trace id of arrival `id`.
  auto rid = [id_base](std::uint64_t id) { return id_base + id; };

  auto count_fault = [&](FaultKind kind, std::uint64_t id,
                         std::uint32_t attempt, TimeMs now,
                         double value = 0.0) {
    if (fault_counter) fault_counter->inc();
    if (metrics) {
      metrics
          ->counter(std::string("chiron.fault.injected.") + to_string(kind))
          .inc();
    }
    if (tracer) {
      tracer->instant_at(std::string("fault.") + to_string(kind), "fault",
                         obs::kVirtualPid, request_track, now,
                         {{"request", static_cast<double>(rid(id))},
                          {"attempt", static_cast<double>(attempt)}});
    }
    if (recorder) {
      recorder->record(fault_rec_kind(kind), rid(id), attempt, now, value);
    }
  };

  // Instance states: warm holds the idle-since time of each resident but
  // idle instance.
  std::vector<TimeMs> warm;
  std::size_t live = 0;             // busy + warm instances
  std::size_t busy = 0;

  // Per-request recovery state. A request is terminal (kDone) exactly once:
  // completed, timed out, or dropped after max_attempts.
  struct ReqState {
    TimeMs arrival = 0.0;
    std::uint32_t attempt = 1;
    enum class Phase : std::uint8_t {
      kWaiting,   ///< arrival not yet processed
      kQueued,    ///< waiting for capacity
      kRunning,   ///< on an instance (pending_ev = completion or crash)
      kBackoff,   ///< waiting to re-attempt (pending_ev = retry)
      kDone,
    } phase = Phase::kWaiting;
    EventQueue::Handle pending_ev = 0;
    EventQueue::Handle timeout_ev = 0;
    bool has_timeout_ev = false;
  };
  std::vector<ReqState> reqs(arrival_times.size());

  // Waiting request ids; timed-out entries are erased eagerly.
  std::deque<std::uint64_t> queue;

  auto note_queue_depth = [&](TimeMs now) {
    if (queue_gauge) queue_gauge->set(static_cast<double>(queue.size()));
    if (tracer) {
      tracer->counter_at("cluster.queue_depth",
                         static_cast<double>(queue.size()), obs::kVirtualPid,
                         0, now);
    }
  };

  std::vector<double> latencies;
  double busy_area = 0.0;  // integral of busy instances over time
  TimeMs last_event = 0.0;
  Rng run_rng = rng.split();

  EventQueue events;
  const TimeMs cold_penalty = cold_start_penalty(params_, cascading_stages);

  auto account = [&](TimeMs now) {
    busy_area += static_cast<double>(busy) * (now - last_event);
    last_event = now;
  };

  // Reclaims warm instances idle past the keep-alive.
  auto reap = [&](TimeMs now) {
    auto it = warm.begin();
    while (it != warm.end()) {
      if (now - *it >= config_.keep_alive_ms) {
        it = warm.erase(it);
        --live;
      } else {
        ++it;
      }
    }
  };

  // Marks `id` terminal and disarms its outstanding timeout.
  auto finalize = [&](std::uint64_t id) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kDone;
    if (r.has_timeout_ev) {
      events.cancel(r.timeout_ev);
      r.has_timeout_ev = false;
    }
  };

  auto end_request_span = [&](std::uint64_t id, TimeMs now) {
    if (tracer) {
      tracer->async_end_at("request", "sim", obs::kVirtualPid, request_track,
                           now, rid(id));
    }
  };

  // Pops the next still-live queued request, skipping tombstones left by
  // timeouts (defensive: timeouts erase eagerly, so skips are rare).
  auto take_queued = [&]() -> std::optional<std::uint64_t> {
    while (!queue.empty()) {
      const std::uint64_t id = queue.front();
      queue.pop_front();
      if (reqs[id].phase == ReqState::Phase::kQueued) return id;
    }
    return std::nullopt;
  };

  // Forward declarations: the recovery paths are mutually recursive
  // (completion -> queued handoff -> service; crash -> retry -> start).
  std::function<void(std::uint64_t, TimeMs)> start_request;
  std::function<void(std::uint64_t, TimeMs, TimeMs)> begin_service;

  // Handles one failed attempt at time `t`: schedules a capped-exponential
  // backoff retry, or drops the request once attempts are exhausted.
  auto fail_attempt = [&](std::uint64_t id, TimeMs t, TimeMs extra_delay) {
    ReqState& r = reqs[id];
    ++result.failed;
    if (r.attempt < retry.max_attempts) {
      ++result.retried;
      if (retry_counter) retry_counter->inc();
      const TimeMs backoff = injector.retry_backoff_ms(retry, r.attempt, id);
      if (tracer) {
        tracer->complete_at("retry.backoff", "fault", obs::kVirtualPid,
                            request_track, t, extra_delay + backoff,
                            {{"attempt", static_cast<double>(r.attempt)},
                             {"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kRetryBackoff, rid(id), r.attempt, t,
                         extra_delay + backoff);
      }
      ++r.attempt;
      r.phase = ReqState::Phase::kBackoff;
      r.pending_ev = events.schedule(
          t + extra_delay + backoff,
          [&, id] { start_request(id, events.now()); });
    } else {
      ++result.dropped;
      if (recorder) {
        recorder->record(obs::RecKind::kDrop, rid(id), r.attempt, t);
      }
      finalize(id);
      end_request_span(id, t);
    }
  };

  // Places `id` on an instance at `now` (startup = 0 for warm reuse) and
  // schedules its completion — or its mid-execution crash.
  begin_service = [&](std::uint64_t id, TimeMs now, TimeMs startup) {
    ReqState& r = reqs[id];
    r.phase = ReqState::Phase::kRunning;
    ++busy;
    TimeMs service = backend.run(run_rng).e2e_latency_ms;
    if (injector.straggles(id, r.attempt)) {
      service *= config_.faults.straggler_multiplier;
      count_fault(FaultKind::kStraggler, id, r.attempt, now,
                  config_.faults.straggler_multiplier);
    }
    if (recorder) {
      recorder->record(obs::RecKind::kServiceBegin, rid(id), r.attempt, now,
                       service);
    }
    if (injector.crashes(id, r.attempt)) {
      const TimeMs crash_at =
          now + startup + service * config_.faults.crash_point;
      r.pending_ev = events.schedule(crash_at, [&, id, crash_at] {
        account(crash_at);
        --busy;
        --live;  // the crash takes the sandbox with it
        count_fault(FaultKind::kCrash, id, reqs[id].attempt, crash_at);
        fail_attempt(id, crash_at, 0.0);
        // The crash freed a slot: a queued request can now cold-start.
        if (const auto qid = take_queued()) {
          note_queue_depth(crash_at);
          start_request(*qid, crash_at);
        }
      });
      return;
    }
    const TimeMs finish = now + startup + service;
    r.pending_ev = events.schedule(finish, [&, id, finish] {
      account(finish);
      --busy;
      const TimeMs latency = finish - reqs[id].arrival;
      latencies.push_back(latency);
      ++result.completed;
      if (recorder) {
        recorder->record(obs::RecKind::kComplete, rid(id),
                         reqs[id].attempt, finish, latency);
      }
      finalize(id);
      if (latency_hist) latency_hist->observe(latency);
      end_request_span(id, finish);
      if (const auto qid = take_queued()) {
        note_queue_depth(finish);
        // The finishing instance is handed to the queued request directly:
        // it never visits the warm pool, so reap() cannot reclaim it out
        // from under the handoff (the keep_alive_ms == 0 cold-start bug).
        reap(finish);
        begin_service(*qid, finish, 0.0);
      } else {
        warm.push_back(finish);
      }
    });
  };

  start_request = [&](std::uint64_t id, TimeMs now) {
    account(now);
    reap(now);
    ReqState& r = reqs[id];
    if (!warm.empty()) {
      warm.pop_back();  // LIFO keeps hot instances hot
      begin_service(id, now, 0.0);
    } else if (live < max_instances) {
      if (injector.cold_start_fails(id, r.attempt)) {
        // The sandbox dies during boot: the boot time is still paid (it
        // delays the retry) but no instance comes up.
        count_fault(FaultKind::kColdStart, id, r.attempt, now, cold_penalty);
        fail_attempt(id, now, cold_penalty);
        return;
      }
      ++live;
      result.peak_instances = std::max(result.peak_instances, live);
      ++result.cold_starts;
      if (cold_counter) cold_counter->inc();
      if (tracer) {
        tracer->instant_at("cluster.cold_start", "sim", obs::kVirtualPid,
                           request_track, now,
                           {{"request", static_cast<double>(rid(id))}});
      }
      if (recorder) {
        recorder->record(obs::RecKind::kColdStart, rid(id), r.attempt, now,
                         cold_penalty);
      }
      begin_service(id, now, cold_penalty);
    } else {
      r.phase = ReqState::Phase::kQueued;
      queue.push_back(id);
      result.peak_queue = std::max(result.peak_queue, queue.size());
      if (recorder) {
        recorder->record(obs::RecKind::kQueue, rid(id), r.attempt, now,
                         static_cast<double>(queue.size()));
      }
      note_queue_depth(now);
    }
  };

  // Abandons `id` at its deadline, wherever it is.
  auto on_timeout = [&](std::uint64_t id, TimeMs deadline) {
    ReqState& r = reqs[id];
    r.has_timeout_ev = false;
    ++result.timed_out;
    if (timeout_counter) timeout_counter->inc();
    if (tracer) {
      tracer->instant_at("request.timeout", "fault", obs::kVirtualPid,
                         request_track, deadline,
                         {{"request", static_cast<double>(rid(id))}});
    }
    if (recorder) {
      recorder->record(obs::RecKind::kTimeout, rid(id), r.attempt, deadline);
    }
    switch (r.phase) {
      case ReqState::Phase::kQueued: {
        const auto it = std::find(queue.begin(), queue.end(), id);
        if (it != queue.end()) queue.erase(it);
        note_queue_depth(deadline);
        break;
      }
      case ReqState::Phase::kRunning: {
        // The platform aborts the handler but keeps the sandbox.
        events.cancel(r.pending_ev);
        account(deadline);
        --busy;
        if (const auto qid = take_queued()) {
          note_queue_depth(deadline);
          reap(deadline);
          begin_service(*qid, deadline, 0.0);
        } else {
          warm.push_back(deadline);
        }
        break;
      }
      case ReqState::Phase::kBackoff:
        events.cancel(r.pending_ev);
        break;
      default:
        break;
    }
    r.phase = ReqState::Phase::kDone;
    end_request_span(id, deadline);
  };

  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    const TimeMs at = arrival_times[i];
    const std::uint64_t id = i;
    reqs[id].arrival = at;
    events.schedule(at, [&, at, id] {
      if (tracer) {
        tracer->async_begin_at("request", "sim", obs::kVirtualPid,
                               request_track, at, rid(id));
      }
      if (recorder) {
        recorder->record(obs::RecKind::kAdmit, rid(id), 1, at);
      }
      if (has_timeout) {
        reqs[id].has_timeout_ev = true;
        reqs[id].timeout_ev =
            events.schedule(at + retry.timeout_ms, [&, id] {
              on_timeout(id, events.now());
            });
      }
      start_request(id, at);
    });
  }
  events.run();

  if (!latencies.empty()) {
    result.mean_ms = mean_of(latencies);
    const Cdf cdf(latencies);  // one sort for all three quantiles
    result.p50_ms = cdf.quantile(0.50);
    result.p95_ms = cdf.quantile(0.95);
    result.p99_ms = cdf.quantile(0.99);
  }
  // Streaming accumulator in completion order (deterministic: virtual
  // time), merged across seeds by run_batch.
  for (double latency : latencies) result.latency_stats.add(latency);
  const TimeMs span = std::max(last_event, config_.horizon_ms);
  result.achieved_rps =
      span > 0.0 ? static_cast<double>(result.completed) / (span / 1000.0)
                 : 0.0;
  result.mean_busy_instances = span > 0.0 ? busy_area / span : 0.0;
  if (metrics) {
    metrics->gauge("cluster.peak_instances")
        .set(static_cast<double>(result.peak_instances));
  }
  CHIRON_LOG(kDebug) << "cluster sim: " << result.completed << "/"
                     << result.offered << " requests, "
                     << result.cold_starts << " cold starts, "
                     << result.failed << " faults, " << result.retried
                     << " retries, " << result.timed_out << " timeouts, "
                     << result.dropped << " drops, peak queue "
                     << result.peak_queue;
  return result;
}

std::vector<ScenarioOutcome> ClusterSimulator::run_batch(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<std::uint64_t>& seeds, const RuntimeParams& params,
    ThreadPool* pool) {
  // Per-(spec, seed) job, prepared sequentially in spec-major order so the
  // arrival processes and the global request-id blocks are minted in a
  // deterministic sequence regardless of how the runs are later scheduled.
  struct Job {
    ClusterConfig config;
    const Backend* backend = nullptr;
    std::size_t stages = 1;
    std::vector<TimeMs> arrivals;
    std::uint64_t id_base = 0;
  };
  std::vector<Job> jobs;
  jobs.reserve(specs.size() * std::max<std::size_t>(1, seeds.size()));
  for (const ScenarioSpec& spec : specs) {
    const std::vector<std::uint64_t> spec_seeds =
        seeds.empty() ? std::vector<std::uint64_t>{spec.config.seed} : seeds;
    for (const std::uint64_t seed : spec_seeds) {
      Job job;
      job.config = spec.config;
      job.config.seed = seed;
      job.backend = spec.backend;
      job.stages = spec.cascading_stages;
      Rng rng(seed);
      ArrivalGenerator arrivals(job.config.arrivals, job.config.offered_rps,
                                rng.split());
      job.arrivals = arrivals.generate(job.config.horizon_ms);
      job.id_base = obs::mint_request_ids(job.arrivals.size());
      jobs.push_back(std::move(job));
    }
  }

  // Independent deterministic runs: each gets its own simulator (and with
  // it EventQueue, FaultInjector, Rng streams, and latency accumulator).
  // map() returns results in job order whatever the worker count.
  std::vector<ClusterResult> results =
      ThreadPool::map(pool, jobs.size(), [&](std::size_t j) {
        const Job& job = jobs[j];
        const ClusterSimulator sim(job.config, params);
        return sim.run_impl(*job.backend, job.stages, job.arrivals,
                            job.id_base);
      });

  // Fold per-seed results into per-scenario outcomes.
  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(specs.size());
  std::size_t j = 0;
  for (const ScenarioSpec& spec : specs) {
    ScenarioOutcome outcome;
    outcome.name = spec.name;
    outcome.seeds =
        seeds.empty() ? std::vector<std::uint64_t>{spec.config.seed} : seeds;
    for (std::size_t k = 0; k < outcome.seeds.size(); ++k, ++j) {
      ClusterResult& r = results[j];
      outcome.latency_ms.merge(r.latency_stats);
      outcome.achieved_rps.add(r.achieved_rps);
      outcome.offered += r.offered;
      outcome.completed += r.completed;
      outcome.cold_starts += r.cold_starts;
      outcome.timed_out += r.timed_out;
      outcome.dropped += r.dropped;
      outcome.runs.push_back(std::move(r));
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace chiron
