#include "platform/one_to_one.h"

#include <algorithm>

namespace chiron {

OneToOneBackend::OneToOneBackend(OneToOneKind kind, RuntimeParams params,
                                 Workflow wf, NoiseConfig noise)
    : kind_(kind),
      params_(params),
      wf_(std::move(wf)),
      noise_(noise),
      transfer_(kind == OneToOneKind::kAsf ? s3_remote() : minio_local()) {}

std::string OneToOneBackend::name() const {
  return kind_ == OneToOneKind::kAsf ? "ASF" : "OpenFaaS";
}

TimeMs OneToOneBackend::scheduling_ms(std::size_t fan_out) const {
  return kind_ == OneToOneKind::kAsf ? params_.asf_scheduling_ms(fan_out)
                                     : params_.openfaas_scheduling_ms(fan_out);
}

TimeMs OneToOneBackend::jit(TimeMs value, Rng& rng) const {
  if (noise_.jitter_sigma <= 0.0) return value;
  return value * rng.jitter(noise_.jitter_sigma);
}

RunResult OneToOneBackend::run(Rng& rng) const {
  RunResult result;
  const double run_scale =
      noise_.run_sigma > 0.0 ? rng.jitter(noise_.run_sigma) : 1.0;
  const FaultInjector* faults =
      noise_.faults && noise_.faults->enabled() ? noise_.faults : nullptr;
  // Transient storage error on one transfer: the client library retries
  // transparently at a fixed latency cost.
  auto transfer_fault = [&](TimeMs latency) -> TimeMs {
    if (faults && faults->spec().transfer_error > 0.0 &&
        rng.uniform() < faults->spec().transfer_error) {
      note_backend_fault(FaultKind::kTransfer);
      return latency + faults->spec().transfer_retry_ms;
    }
    return latency;
  };
  TimeMs t = 0.0;
  Bytes upstream_bytes = 0;       // intermediate data the stage must pull
  std::size_t upstream_objects = 0;  // one stored object per predecessor

  for (StageId s = 0; s < wf_.stage_count(); ++s) {
    const Stage& stage = wf_.stage(s);
    const std::size_t n = stage.parallelism();
    const TimeMs sched_total = jit(scheduling_ms(n), rng);
    // The entry stage receives its payload with the invocation; later
    // stages pull their predecessors' outputs from storage. Fan-in means
    // one GET per predecessor object; requests overlap only partially
    // (~50 %), so wide fan-ins pay repeatedly (Obs. 1).
    TimeMs pull = 0.0;
    if (s > 0 && upstream_objects > 0) {
      const Bytes avg_obj = upstream_bytes / upstream_objects;
      const double effective_requests =
          1.0 + 0.5 * static_cast<double>(upstream_objects - 1);
      pull = transfer_fault(
          jit(transfer_.latency_ms(avg_obj) * effective_requests, rng));
    }

    TimeMs stage_latency = 0.0;
    Bytes stage_output = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const FunctionId f = stage.functions[k];
      const FunctionSpec& spec = wf_.function(f);
      // Dispatches ramp linearly across the scheduling window.
      const TimeMs dispatch =
          sched_total * static_cast<TimeMs>(k + 1) / static_cast<TimeMs>(n);
      const TimeMs invoke = jit(params_.sandbox_invoke_ms, rng);
      // One-to-one: each function has its own sandbox, so a straggling
      // instance dilates only that function.
      double straggle = 1.0;
      if (faults && faults->spec().straggler > 0.0 &&
          rng.uniform() < faults->spec().straggler) {
        straggle = faults->spec().straggler_multiplier;
        note_backend_fault(FaultKind::kStraggler);
      }
      TimeMs exec = 0.0;
      FunctionTimeline tl;
      tl.id = f;
      tl.invoke_ms = t + dispatch;
      tl.start_exec_ms = t + dispatch + invoke + pull;
      {
        // Solo execution in a dedicated sandbox: spans follow the
        // behaviour directly.
        TimeMs cursor = tl.start_exec_ms;
        for (const Segment& seg : spec.behavior.segments()) {
          const TimeMs d = jit(seg.duration, rng) * straggle;
          tl.spans.push_back({seg.kind == Segment::Kind::kCpu
                                  ? TimelineSpan::Kind::kCpu
                                  : TimelineSpan::Kind::kBlock,
                              cursor, cursor + d});
          cursor += d;
          exec += d;
        }
      }
      // Results of non-final stages are pushed to storage for successors.
      const TimeMs push =
          s + 1 < wf_.stage_count()
              ? transfer_fault(
                    jit(transfer_.latency_ms(spec.output_bytes), rng))
              : 0.0;
      tl.finish_ms = tl.start_exec_ms + exec + push;
      stage_latency = std::max(stage_latency, tl.finish_ms - t);
      stage_output += spec.output_bytes;
      result.functions.push_back(std::move(tl));
    }
    result.stage_latency_ms.push_back(stage_latency);
    t += stage_latency;
    upstream_bytes = stage_output;
    upstream_objects = n;
  }

  if (run_scale != 1.0) {
    t *= run_scale;
    for (TimeMs& s : result.stage_latency_ms) s *= run_scale;
    for (FunctionTimeline& tl : result.functions) {
      tl.invoke_ms *= run_scale;
      tl.start_exec_ms *= run_scale;
      tl.finish_ms *= run_scale;
      for (TimelineSpan& span : tl.spans) {
        span.begin *= run_scale;
        span.end *= run_scale;
      }
    }
  }
  result.e2e_latency_ms = t;
  // ASF bills one transition into and out of every state (Fig. 19).
  result.state_transitions =
      kind_ == OneToOneKind::kAsf ? wf_.function_count() + wf_.stage_count() + 1
                                  : 0;
  return result;
}

ResourceUsage OneToOneBackend::resources() const {
  ResourceUsage usage;
  for (const FunctionSpec& spec : wf_.functions()) {
    usage.memory_mb += sandbox_memory_mb(params_, /*processes=*/1,
                                         /*threads=*/0, /*pool_workers=*/0,
                                         spec.memory_mb);
    usage.sandboxes += 1;
    usage.processes += 1;
  }
  // Uniform allocation: every function holds a whole CPU (Obs. 4).
  usage.cpus = static_cast<double>(wf_.function_count());
  return usage;
}

}  // namespace chiron
