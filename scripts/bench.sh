#!/usr/bin/env bash
# Deploy-path benchmark runner: builds the Release tree, runs the
# micro_pgp + micro_predictor + micro_fault + micro_obs suites in
# google-benchmark JSON mode, and folds the results into
# BENCH_deploy.json at the repo root so the perf trajectory is tracked
# PR-over-PR. micro_obs carries the recorder-overhead datapoint
# (BM_ClusterRecorderOn vs BM_ClusterRecorderOff).
#
#   scripts/bench.sh                        # full run, writes BENCH_deploy.json
#   scripts/bench.sh --smoke                # fast correctness pass, no output file
#   scripts/bench.sh --baseline old.json    # embed a prior run under "baseline"
#
# Env overrides: BENCH_BUILD_DIR (default build-bench), JOBS (nproc).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BENCH_BUILD_DIR="${BENCH_BUILD_DIR:-build-bench}"

SMOKE=0
BASELINE=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --baseline)
      [[ $# -ge 2 ]] || { echo "--baseline requires a file" >&2; exit 2; }
      BASELINE="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

# Machine-load sanity gate: timings taken while the box is already busy
# are noise, not signal. The 1-min load average at bench start is
# recorded into BENCH_deploy.json, and when it exceeds 1.0 every timed
# suite is re-run once after the first pass (the second pass, taken
# after the initial load has had time to drain, is the one recorded).
read -r LOAD_AVG_START _ < /proc/loadavg
HIGH_LOAD=0
if awk -v l="${LOAD_AVG_START}" 'BEGIN { exit !(l > 1.0) }'; then
  HIGH_LOAD=1
  echo "WARNING: 1-min load average ${LOAD_AVG_START} > 1.0 at bench" \
       "start; timings may be contended — each suite will be re-run once"
fi

echo "== bench: configure + build Release (${BENCH_BUILD_DIR}) =="
cmake -B "${BENCH_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BENCH_BUILD_DIR}" -j "${JOBS}" \
  --target bench_micro_pgp bench_micro_predictor bench_micro_fault \
           bench_micro_obs bench_micro_sweep bench_micro_cluster \
           bench_micro_router bench_micro_parallel

if [[ "${SMOKE}" == "1" ]]; then
  # One tiny repetition per suite: proves the binaries run and produce
  # well-formed JSON without paying for stable timings.
  echo "== bench: smoke =="
  "${BENCH_BUILD_DIR}/bench/bench_micro_pgp" \
    --benchmark_filter='BM_PgpScheduleKl/5$' --benchmark_min_time=0.01 \
    --benchmark_format=json >/dev/null
  "${BENCH_BUILD_DIR}/bench/bench_micro_predictor" \
    --benchmark_filter='BM_WorkflowPrediction/5$' --benchmark_min_time=0.01 \
    --benchmark_format=json >/dev/null
  "${BENCH_BUILD_DIR}/bench/bench_micro_fault" \
    --benchmark_filter='BM_FaultInjectorRoll$' --benchmark_min_time=0.01 \
    --benchmark_format=json >/dev/null
  "${BENCH_BUILD_DIR}/bench/bench_micro_obs" \
    --benchmark_filter='BM_RecorderRecord$' --benchmark_min_time=0.01 \
    --benchmark_format=json >/dev/null
  "${BENCH_BUILD_DIR}/bench/bench_micro_sweep" \
    --benchmark_filter='BM_SweepSequential/2$' --benchmark_min_time=0.01 \
    --benchmark_format=json >/dev/null
  "${BENCH_BUILD_DIR}/bench/bench_micro_cluster" \
    --benchmark_filter='BM_ClusterRun/1024$' --benchmark_min_time=0.01 \
    --benchmark_format=json >/dev/null
  "${BENCH_BUILD_DIR}/bench/bench_micro_router" \
    --benchmark_filter='BM_RouterPolicy/warm_affinity$' \
    --benchmark_min_time=0.01 --benchmark_format=json >/dev/null
  "${BENCH_BUILD_DIR}/bench/bench_micro_parallel" \
    --benchmark_filter='BM_ClusterRunParallel/nodes8/65536' \
    --benchmark_min_time=0.01 --benchmark_format=json >/dev/null
  echo "== bench: smoke OK =="
  exit 0
fi

PGP_JSON="${BENCH_BUILD_DIR}/micro_pgp.json"
PRED_JSON="${BENCH_BUILD_DIR}/micro_predictor.json"
FAULT_JSON="${BENCH_BUILD_DIR}/micro_fault.json"
OBS_JSON="${BENCH_BUILD_DIR}/micro_obs.json"
SWEEP_JSON="${BENCH_BUILD_DIR}/micro_sweep.json"
CLUSTER_JSON="${BENCH_BUILD_DIR}/micro_cluster.json"
ROUTER_JSON="${BENCH_BUILD_DIR}/micro_router.json"
PARALLEL_JSON="${BENCH_BUILD_DIR}/micro_parallel.json"

# Runs one suite to JSON. Under the high-load gate each suite runs
# twice back-to-back and the second pass wins: by then the competing
# load observed at start has had the whole first pass to drain, and the
# recorded numbers come from the calmer window.
run_suite() {
  local label="$1" binary="$2" out="$3"
  echo "== bench: ${label} =="
  "${binary}" --benchmark_format=json --benchmark_out="${out}" \
    --benchmark_out_format=json
  if [[ "${HIGH_LOAD}" == "1" ]]; then
    echo "== bench: ${label} (re-run: 1-min load was ${LOAD_AVG_START} at start) =="
    "${binary}" --benchmark_format=json --benchmark_out="${out}" \
      --benchmark_out_format=json
  fi
}

run_suite micro_pgp "${BENCH_BUILD_DIR}/bench/bench_micro_pgp" "${PGP_JSON}"
run_suite micro_predictor "${BENCH_BUILD_DIR}/bench/bench_micro_predictor" "${PRED_JSON}"
run_suite micro_fault "${BENCH_BUILD_DIR}/bench/bench_micro_fault" "${FAULT_JSON}"
run_suite micro_obs "${BENCH_BUILD_DIR}/bench/bench_micro_obs" "${OBS_JSON}"
run_suite micro_sweep "${BENCH_BUILD_DIR}/bench/bench_micro_sweep" "${SWEEP_JSON}"
run_suite micro_cluster "${BENCH_BUILD_DIR}/bench/bench_micro_cluster" "${CLUSTER_JSON}"
run_suite micro_router "${BENCH_BUILD_DIR}/bench/bench_micro_router" "${ROUTER_JSON}"
run_suite micro_parallel "${BENCH_BUILD_DIR}/bench/bench_micro_parallel" "${PARALLEL_JSON}"

python3 - "$PGP_JSON" "$PRED_JSON" "$FAULT_JSON" "$OBS_JSON" "$SWEEP_JSON" \
  "$CLUSTER_JSON" "$ROUTER_JSON" "$PARALLEL_JSON" "$LOAD_AVG_START" \
  "$HIGH_LOAD" "$BASELINE" <<'PY'
import json, sys

(pgp_path, pred_path, fault_path, obs_path, sweep_path, cluster_path,
 router_path, parallel_path, load_avg_start, high_load,
 baseline_path) = sys.argv[1:12]
out = {
    "bench": "deploy",
    "build_type": "Release",
    "load_avg": {
        "start_1min": float(load_avg_start),
        "high_load_rerun": high_load == "1",
    },
    "micro_pgp": json.load(open(pgp_path)),
    "micro_predictor": json.load(open(pred_path)),
    "micro_fault": json.load(open(fault_path)),
    "micro_obs": json.load(open(obs_path)),
    "micro_sweep": json.load(open(sweep_path)),
    "micro_cluster": json.load(open(cluster_path)),
    "micro_router": json.load(open(router_path)),
    "micro_parallel": json.load(open(parallel_path)),
}

# Surface the benchmark library's own build type: timings taken against a
# debug libbenchmark (distro default on some images) are tainted, and the
# honest fix is building it from source — see CHIRON_BENCHMARK_SOURCE_DIR
# in CMakeLists.txt.
lib_build = out["micro_predictor"].get("context", {}).get(
    "library_build_type", "unknown")
out["benchmark_library_build_type"] = lib_build
if lib_build != "release":
    print("WARNING: libbenchmark build type is %r (want 'release'); "
          "provide sources via CHIRON_BENCHMARK_SOURCE_DIR to clear the "
          "timing taint" % lib_build)

# Kernel-complexity aggregates: the BigO fits for the fast interleaving
# kernels and their retired scan-per-step references, plus the measured
# speedup at the largest size. check.sh guards the GIL fit against a
# regression to N^2.
def bigo(suite, family):
    for b in out[suite].get("benchmarks", []):
        if b.get("name") == family + "_BigO":
            return {"big_o": b.get("big_o"),
                    "cpu_coefficient": b.get("cpu_coefficient"),
                    "real_coefficient": b.get("real_coefficient")}
    return None

def time_at(suite, name):
    for b in out[suite].get("benchmarks", []):
        if b.get("name") == name:
            return b.get("real_time")
    return None

kernels = {}
for family, ref in (("BM_GilSimulationThreads", "BM_GilSimulationThreadsSlowRef"),
                    ("BM_CpuShareSimulation", "BM_CpuShareSimulationSlowRef")):
    entry = {"fast": bigo("micro_predictor", family),
             "slow_reference": bigo("micro_predictor", ref)}
    fast512 = time_at("micro_predictor", family + "/512")
    slow512 = time_at("micro_predictor", ref + "/512")
    if fast512 and slow512:
        entry["speedup_at_512"] = slow512 / fast512
    kernels[family] = entry
    if entry["fast"]:
        print("%s: BigO %s, %.1fx vs slow reference at 512"
              % (family, entry["fast"]["big_o"],
                 entry.get("speedup_at_512", float("nan"))))
out["kernel_bigo"] = kernels

# Serving-loop hot path: the typed-event loop (slab events, lazy arrival
# and timeout merges, O(1) cancellation) vs the retired closure loop, on
# the high-churn overload scenario. check.sh guards the fast fit against
# superlinear regressions and the speedup at 64k against < 2x.
cluster = {"fast": bigo("micro_cluster", "BM_ClusterRun"),
           "reference": bigo("micro_cluster", "BM_ClusterRunReference")}
fast64 = time_at("micro_cluster", "BM_ClusterRun/65536")
ref64 = time_at("micro_cluster", "BM_ClusterRunReference/65536")
if fast64 and ref64:
    cluster["speedup_at_65536"] = ref64 / fast64
    print("cluster hot path: BigO %s, %.1fx vs closure reference at 65536"
          % (cluster["fast"]["big_o"] if cluster["fast"] else "?",
             cluster["speedup_at_65536"]))
out["cluster_hotpath"] = cluster

# Windowed-engine scaling: the multi-node serving loop at sim_threads=1
# vs 4 window workers on healthy 8- and 32-node fleets. check.sh guards
# the 4-thread speedup on the 32-node scenario (>= 2x, enforced only
# when the host actually has >= 4 CPUs) and the parallel fit staying at
# or below N log N.
import os
parallel = {"cpus_online": os.cpu_count() or 1}
for nodes in ("nodes8", "nodes32"):
    entry = {
        "sequential": bigo("micro_parallel",
                           "BM_ClusterRunSharded/%s/real_time" % nodes),
        "parallel": bigo("micro_parallel",
                         "BM_ClusterRunParallel/%s/real_time" % nodes),
    }
    seq = time_at("micro_parallel",
                  "BM_ClusterRunSharded/%s/1048576/real_time" % nodes)
    par = time_at("micro_parallel",
                  "BM_ClusterRunParallel/%s/1048576/real_time" % nodes)
    if seq and par:
        entry["speedup_at_1048576"] = seq / par
        print("parallel loop %-7s: BigO %s, %.2fx at 4 threads / 1M requests"
              % (nodes,
                 entry["parallel"]["big_o"] if entry["parallel"] else "?",
                 entry["speedup_at_1048576"]))
    parallel[nodes] = entry
out["parallel_loop"] = parallel

# Router-policy comparison on the skewed 8-node burst scenario: cold
# starts and p95 per placement policy. check.sh guards warm_affinity
# beating random on cold starts (locality must pay for itself).
policies = {}
for b in out["micro_router"].get("benchmarks", []):
    name = b.get("name", "")
    if not name.startswith("BM_RouterPolicy/"):
        continue
    policies[name.split("/", 1)[1]] = {
        "cold_starts": b.get("cold_starts"),
        "p95_ms": b.get("p95_ms"),
        "completed": b.get("completed"),
        "run_ms": b.get("real_time"),
    }
out["router_policies"] = policies
for policy in ("warm_affinity", "least_outstanding", "power_of_two",
               "round_robin", "random"):
    entry = policies.get(policy)
    if entry:
        print("router %-17s: %4d cold starts, p95 %6.1f ms"
              % (policy, entry["cold_starts"], entry["p95_ms"]))

# Surface the recorder-overhead acceptance datapoint directly: the
# recorder-on cluster run must stay within 5% of recorder-off.
times = {b["name"]: b["real_time"]
         for b in out["micro_obs"].get("benchmarks", [])
         if "name" in b and "real_time" in b}
on, off = times.get("BM_ClusterRecorderOn"), times.get("BM_ClusterRecorderOff")
if on and off:
    out["recorder_overhead"] = {
        "cluster_recorder_on_ms": on,
        "cluster_recorder_off_ms": off,
        "overhead_pct": 100.0 * (on - off) / off,
    }
    print("recorder overhead: %.2f%%" % out["recorder_overhead"]["overhead_pct"])
if baseline_path:
    out["baseline"] = json.load(open(baseline_path))
with open("BENCH_deploy.json", "w") as f:
    json.dump(out, f, indent=1)
    f.write("\n")
print("wrote BENCH_deploy.json")
PY
