#!/usr/bin/env bash
# Tier-1 verification wrapper: configure, build, and run the full ctest
# suite, then smoke the observability endpoint end-to-end (chironctl
# --serve-obs + curl). With --tsan, additionally build a ThreadSanitizer
# preset (-DCHIRON_SANITIZE=thread, separate build dir) and repeat the
# concurrency-sensitive subset — the live-thread engine, the local runner,
# the emulated GIL, and the tracer/metrics/recorder/obs-server layer.
#
#   scripts/check.sh            # plain tier-1
#   scripts/check.sh --tsan     # tier-1 + sanitized concurrency subset
#
# Env overrides: BUILD_DIR (default build), TSAN_BUILD_DIR (build-tsan),
# JOBS (nproc).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"

echo "== tier-1: configure + build (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== tier-1: bench smoke =="
scripts/bench.sh --smoke

echo "== tier-1: kernel BigO guard =="
# The fast GIL kernel must stay event-driven: a quick complexity fit over
# 8..512 threads (binary just built by the bench smoke) has to come out
# at N log N or better. A fit of N^2 (or worse) means someone re-linearised
# the inner loop — fail loudly before any timing is recorded.
GUARD_JSON="${BENCH_BUILD_DIR:-build-bench}/bigo_guard.json"
"${BENCH_BUILD_DIR:-build-bench}/bench/bench_micro_predictor" \
  --benchmark_filter='BM_GilSimulationThreads/' --benchmark_min_time=0.01 \
  --benchmark_format=json 2>/dev/null > "${GUARD_JSON}"
python3 - "${GUARD_JSON}" <<'PY'
import json, sys
fits = {b["name"]: b.get("big_o")
        for b in json.load(open(sys.argv[1])).get("benchmarks", [])
        if b.get("aggregate_name") == "BigO"}
fit = fits.get("BM_GilSimulationThreads_BigO")
if fit is None:
    sys.exit("BigO guard: no complexity fit emitted for "
             "BM_GilSimulationThreads")
print("BM_GilSimulationThreads BigO fit: %s" % fit)
if fit in ("N^2", "N^3"):
    sys.exit("BigO guard: GIL kernel regressed to %s (want <= N log N)"
             % fit)
PY

echo "== tier-1: cluster hot-path guard =="
# The typed-event serving loop must stay near-linear and meaningfully
# ahead of the retired closure loop: the fast family's complexity fit has
# to come out at N log N or better, and the measured speedup over the
# reference at 65536 requests must hold >= 2x (the recorded full-run
# numbers in BENCH_deploy.json sit much higher; 2x keeps the quick
# min_time=0.01 fit from flaking on a loaded box).
CLUSTER_GUARD_JSON="${BENCH_BUILD_DIR:-build-bench}/cluster_guard.json"
"${BENCH_BUILD_DIR:-build-bench}/bench/bench_micro_cluster" \
  --benchmark_min_time=0.01 \
  --benchmark_format=json 2>/dev/null > "${CLUSTER_GUARD_JSON}"
python3 - "${CLUSTER_GUARD_JSON}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
fits, times = {}, {}
for b in doc.get("benchmarks", []):
    if b.get("aggregate_name") == "BigO":
        fits[b["name"]] = b.get("big_o")
    elif "real_time" in b:
        times[b["name"]] = b["real_time"]
fit = fits.get("BM_ClusterRun_BigO")
if fit is None:
    sys.exit("cluster guard: no complexity fit emitted for BM_ClusterRun")
print("BM_ClusterRun BigO fit: %s" % fit)
if fit in ("N^2", "N^3"):
    sys.exit("cluster guard: serving loop regressed to %s "
             "(want <= N log N)" % fit)
fast = times.get("BM_ClusterRun/65536")
ref = times.get("BM_ClusterRunReference/65536")
if not fast or not ref:
    sys.exit("cluster guard: missing 65536-request timings")
speedup = ref / fast
print("BM_ClusterRun speedup at 65536: %.2fx vs closure reference" % speedup)
if speedup < 2.0:
    sys.exit("cluster guard: typed loop only %.2fx faster than the "
             "closure reference at 65536 (want >= 2x)" % speedup)
PY

echo "== tier-1: parallel loop guard =="
# The windowed engine must actually buy wall-clock: at 4 sim threads on
# the 32-node scenario the parallel run has to finish >= 2x faster than
# the identical sim_threads=1 schedule at the largest size, and its
# complexity fit has to stay at N log N or better (a superlinear fit
# means the barrier/merge machinery started scaling with request
# count). The speedup clause only binds when the host actually has >= 4
# CPUs online — on smaller boxes the parity and BigO clauses still run,
# the ratio is printed, and enforcement is skipped with a warning.
PARALLEL_GUARD_JSON="${BENCH_BUILD_DIR:-build-bench}/parallel_guard.json"
"${BENCH_BUILD_DIR:-build-bench}/bench/bench_micro_parallel" \
  --benchmark_filter='nodes32' --benchmark_min_time=0.01 \
  --benchmark_format=json 2>/dev/null > "${PARALLEL_GUARD_JSON}"
python3 - "${PARALLEL_GUARD_JSON}" <<'PY'
import json, os, sys
doc = json.load(open(sys.argv[1]))
fits, times = {}, {}
for b in doc.get("benchmarks", []):
    if b.get("aggregate_name") == "BigO":
        fits[b["name"]] = b.get("big_o")
    elif "real_time" in b:
        times[b["name"]] = b["real_time"]
fit = fits.get("BM_ClusterRunParallel/nodes32/real_time_BigO")
if fit is None:
    sys.exit("parallel guard: no complexity fit emitted for "
             "BM_ClusterRunParallel/nodes32")
seq = times.get("BM_ClusterRunSharded/nodes32/1048576/real_time")
par = times.get("BM_ClusterRunParallel/nodes32/1048576/real_time")
mid = times.get("BM_ClusterRunParallel/nodes32/262144/real_time")
if not seq or not par or not mid:
    sys.exit("parallel guard: missing 262144/1048576-request timings")
# The library's three-point least-squares label wavers between NlgN and
# N^2 when the 1M point picks up cache pressure (~4.2-5x per 4x N), so a
# superlinear label alone is not a failure: require the measured growth
# to actually leave the N log N envelope too. N log N predicts ~4.4x per
# 4x N at this size; a genuine N^2 regression shows ~16x. 9x splits them
# with headroom for a noisy box.
growth = par / mid
print("BM_ClusterRunParallel/nodes32 BigO fit: %s (%.1fx per 4x N at 1M)"
      % (fit, growth))
if fit in ("N^2", "N^3") and growth > 9.0:
    sys.exit("parallel guard: windowed engine regressed to %s with %.1fx "
             "growth per 4x N (want <= N log N, ~4.4x)" % (fit, growth))
speedup = seq / par
cpus = os.cpu_count() or 1
print("parallel guard: %.2fx at 4 threads vs sequential schedule "
      "(32 nodes, 1M requests, %d CPUs online)" % (speedup, cpus))
if cpus < 4:
    print("parallel guard: only %d CPUs online (need >= 4 for the "
          "speedup clause); >= 2x enforcement skipped" % cpus)
elif speedup < 2.0:
    sys.exit("parallel guard: 4 sim threads only %.2fx faster than the "
             "sequential schedule at 1M requests (want >= 2x)" % speedup)
PY

echo "== tier-1: router policy guard =="
# Placement must pay for itself: on the skewed 8-node burst scenario the
# warm-affinity router has to land well under random's cold-start count
# (full-run numbers in BENCH_deploy.json show ~25x; 2x keeps the quick
# pass honest without flaking). The counters are deterministic per seed,
# so min_time can stay tiny.
ROUTER_GUARD_JSON="${BENCH_BUILD_DIR:-build-bench}/router_guard.json"
"${BENCH_BUILD_DIR:-build-bench}/bench/bench_micro_router" \
  --benchmark_min_time=0.01 \
  --benchmark_format=json 2>/dev/null > "${ROUTER_GUARD_JSON}"
python3 - "${ROUTER_GUARD_JSON}" <<'PY'
import json, sys
cold = {b["name"].split("/", 1)[1]: b.get("cold_starts")
        for b in json.load(open(sys.argv[1])).get("benchmarks", [])
        if b.get("name", "").startswith("BM_RouterPolicy/")}
warm, rand = cold.get("warm_affinity"), cold.get("random")
if warm is None or rand is None:
    sys.exit("router guard: missing warm_affinity/random cold-start counters")
print("router guard: warm_affinity %d cold starts vs random %d"
      % (warm, rand))
if warm * 2 >= rand:
    sys.exit("router guard: warm_affinity (%d cold starts) no longer "
             "beats random (%d) by 2x on the burst scenario" % (warm, rand))
PY

echo "== tier-1: obs smoke =="
# End-to-end observability: run a faulted chironctl with the embedded obs
# endpoint + flight recorder, scrape /healthz + /metrics over HTTP, and
# JSON-validate /trace, /recorder, and the on-exit recorder dump.
OBS_LOG="${BUILD_DIR}/obs_smoke.log"
OBS_DUMP="${BUILD_DIR}/obs_smoke_recorder.json"
rm -f "${OBS_LOG}" "${OBS_DUMP}"
# CHIRON_LOG_LEVEL pinned: the port is parsed from the info-level
# "listening" line, which an inherited error-level env would filter.
CHIRON_LOG_LEVEL=info "${BUILD_DIR}/examples/chironctl" \
  --faults cold=0.05,crash=0.05,straggler=0.1x4,seed=7 \
  --retry 3 --timeout-ms 1500 --rps 30 \
  --serve-obs 0 --obs-linger-ms 6000 \
  --recorder --recorder-dump "${OBS_DUMP}" \
  >"${OBS_LOG}" 2>&1 &
OBS_PID=$!

OBS_PORT=""
for _ in $(seq 1 100); do
  OBS_PORT="$(sed -n 's#.*obs server listening on http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "${OBS_LOG}" | head -n 1)"
  [[ -n "${OBS_PORT}" ]] && break
  sleep 0.1
done
if [[ -z "${OBS_PORT}" ]]; then
  echo "obs smoke: server never reported a port" >&2
  cat "${OBS_LOG}" >&2
  exit 1
fi

curl -fsS --max-time 5 "http://127.0.0.1:${OBS_PORT}/healthz" | grep -q '^ok$'
curl -fsS --max-time 5 "http://127.0.0.1:${OBS_PORT}/metrics" | grep -q '^# TYPE '
curl -fsS --max-time 5 "http://127.0.0.1:${OBS_PORT}/trace" \
  | python3 -c 'import json,sys; json.load(sys.stdin)["traceEvents"]'
curl -fsS --max-time 5 "http://127.0.0.1:${OBS_PORT}/recorder" \
  | python3 -c 'import json,sys; json.load(sys.stdin)["events"]'

OBS_RC=0; wait "${OBS_PID}" || OBS_RC=$?
# 0 = SLO met, 3 = deployed but SLO missed; both mean the pipeline ran.
if [[ "${OBS_RC}" != "0" && "${OBS_RC}" != "3" ]]; then
  echo "obs smoke: chironctl exited ${OBS_RC}" >&2
  cat "${OBS_LOG}" >&2
  exit 1
fi
python3 -c 'import json,sys; json.load(open(sys.argv[1]))["events"]' "${OBS_DUMP}"
echo "== tier-1: obs smoke OK =="

if [[ "${1:-}" == "--tsan" ]]; then
  TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
  echo "== tsan: configure + build (${TSAN_BUILD_DIR}) =="
  cmake -B "${TSAN_BUILD_DIR}" -S . -DCHIRON_SANITIZE=thread >/dev/null
  cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}"
  echo "== tsan: concurrency-sensitive subset =="
  ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure -j "${JOBS}" \
    -R 'Engine|LocalRunner|EmulatedGil|Gil|Tracer|Counter|Gauge|Histogram|MetricsRegistry|Instrumentation|ThreadPool|PredictionCache|PgpParity|Fault|Obs|Sweep|Cluster|Router|Par'
fi

echo "== check.sh: all green =="
