#!/usr/bin/env bash
# Tier-1 verification wrapper: configure, build, and run the full ctest
# suite. With --tsan, additionally build a ThreadSanitizer preset
# (-DCHIRON_SANITIZE=thread, separate build dir) and repeat the
# concurrency-sensitive subset — the live-thread engine, the local runner,
# the emulated GIL, and the new tracer/metrics layer.
#
#   scripts/check.sh            # plain tier-1
#   scripts/check.sh --tsan     # tier-1 + sanitized concurrency subset
#
# Env overrides: BUILD_DIR (default build), TSAN_BUILD_DIR (build-tsan),
# JOBS (nproc).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"

echo "== tier-1: configure + build (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== tier-1: bench smoke =="
scripts/bench.sh --smoke

if [[ "${1:-}" == "--tsan" ]]; then
  TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
  echo "== tsan: configure + build (${TSAN_BUILD_DIR}) =="
  cmake -B "${TSAN_BUILD_DIR}" -S . -DCHIRON_SANITIZE=thread >/dev/null
  cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}"
  echo "== tsan: concurrency-sensitive subset =="
  ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure -j "${JOBS}" \
    -R 'Engine|LocalRunner|EmulatedGil|Gil|Tracer|Counter|Gauge|Histogram|MetricsRegistry|Instrumentation|ThreadPool|PredictionCache|PgpParity|Fault'
fi

echo "== check.sh: all green =="
